/**
 * @file
 * Piecewise-constant scalar traces over simulated time.
 *
 * The environment side of every experiment is a trace: solar
 * irradiance (dimensionless, [0,1]) produced by energy::SolarModel,
 * or absolute harvested power in watts after scaling through
 * energy::Harvester. Traces support O(log n) point queries plus the
 * segment-boundary query the segment-batched simulator needs to
 * advance in O(1) through constant-power stretches.
 */

#ifndef QUETZAL_ENERGY_POWER_TRACE_HPP
#define QUETZAL_ENERGY_POWER_TRACE_HPP

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace quetzal {
namespace energy {

/**
 * A right-open piecewise-constant function of time. The value before
 * the first segment and after the last segment's start is the nearest
 * segment's value (the trace extends its final value forever).
 */
class PowerTrace
{
  public:
    /** One segment: the value holds from start until the next start. */
    struct Segment
    {
        Tick start = 0;
        double value = 0.0;
    };

    /**
     * Amortized-O(1) point queries for monotone (mostly forward)
     * query sequences. A cursor remembers the segment the last query
     * landed in and walks forward from there; a backward query
     * re-seeks via binary search. Answers are identical to the
     * trace's own valueAt()/nextChangeAfter() for every input.
     *
     * The referenced trace must outlive the cursor and must not be
     * mutated while the cursor is in use.
     */
    class Cursor
    {
      public:
        Cursor() = default;

        explicit Cursor(const PowerTrace &trace) : trace(&trace) {}

        /** Same answer as trace.valueAt(tick). */
        double valueAt(Tick tick);

        /** Same answer as trace.nextChangeAfter(tick). */
        Tick nextChangeAfter(Tick tick);

        /** Forget the remembered position (next query re-seeks). */
        void reset() { index = 0; }

        /** Remembered segment index, for external snapshots. */
        std::size_t position() const { return index; }

        /**
         * Restore a position previously read via position() against
         * the same trace. The fleet engine persists cursor positions
         * in its struct-of-arrays state so rehydrated devices resume
         * their amortized-O(1) forward walk instead of re-walking the
         * trace from tick 0 every slab.
         */
        void restore(std::size_t saved) { index = saved; }

      private:
        /** Move index to the segment holding at `tick`. */
        void seek(Tick tick);

        /** Cold out-of-line path of seek() for backward queries. */
        void reseekBackward(Tick tick);

        const PowerTrace *trace = nullptr;
        /** Index of the segment whose value holds at the last query
         *  tick (0 also covers ticks before the first segment). */
        std::size_t index = 0;
    };

    /** Empty trace; valueAt() returns 0 until segments are added. */
    PowerTrace() = default;

    /** Construct from pre-sorted segments (panics if unsorted). */
    explicit PowerTrace(std::vector<Segment> segments);

    /**
     * Construct from uniformly spaced samples starting at tick 0.
     * @param samples one value per interval
     * @param interval ticks between samples (> 0)
     */
    static PowerTrace fromSamples(const std::vector<double> &samples,
                                  Tick interval);

    /** Constant-valued trace. */
    static PowerTrace constant(double value);

    /** Append a segment; start must exceed the previous start. */
    void append(Tick start, double value);

    /** Value at the given tick. */
    double valueAt(Tick tick) const;

    /** A cursor over this trace (see Cursor). */
    Cursor cursor() const { return Cursor(*this); }

    /**
     * First tick strictly after `tick` at which the value changes,
     * or kTickNever if the value is constant from `tick` onward.
     */
    Tick nextChangeAfter(Tick tick) const;

    /** Number of segments. */
    std::size_t segmentCount() const { return segments.size(); }

    /** Read-only access to segments. */
    const std::vector<Segment> &data() const { return segments; }

    /** Largest value over all segments (0 for an empty trace). */
    double maxValue() const;

    /** Smallest value over all segments (0 for an empty trace). */
    double minValue() const;

    /**
     * Time-weighted mean value over [0, horizon).
     */
    double meanValue(Tick horizon) const;

    /** Return a copy with every value multiplied by factor. */
    PowerTrace scaled(double factor) const;

    /**
     * One multiplicative overlay window: value *= factor over the
     * right-open tick range [start, end). Used by the fault layer for
     * harvest dropouts (factor 0) and spikes (factor > 1).
     */
    struct OverlayWindow
    {
        Tick start = 0;
        Tick end = 0;
        double factor = 1.0;
    };

    /**
     * Return a copy with the windows spliced in. Windows must be
     * sorted by start and non-overlapping (panics otherwise); empty
     * or identity (factor 1) windows are dropped. Outside every
     * window the copy is value-identical to this trace.
     */
    PowerTrace overlaid(const std::vector<OverlayWindow> &windows) const;

    /**
     * Serialize as CSV rows "time_seconds,value".
     */
    void writeCsv(std::ostream &out) const;

    /**
     * Parse from CSV rows "time_seconds,value" (comments allowed).
     * Calls fatal() on malformed input.
     */
    static PowerTrace readCsv(std::istream &in);

  private:
    std::vector<Segment> segments;
};

// Cursor queries are inline: they sit on the per-event hot path of
// both simulation engines (one valueAt + nextChangeAfter pair per
// device step), where the call overhead would rival the work.

inline void
PowerTrace::Cursor::seek(Tick tick)
{
    const auto &segments = trace->segments;
    if (index >= segments.size())
        index = 0;
    if (tick < segments[index].start) {
        reseekBackward(tick);
        return;
    }
    // Forward walk; each segment is crossed at most once per pass
    // over the trace, so a monotone query sequence is O(1) amortized.
    while (index + 1 < segments.size() &&
           segments[index + 1].start <= tick)
        ++index;
}

inline double
PowerTrace::Cursor::valueAt(Tick tick)
{
    if (trace == nullptr || trace->segments.empty())
        return 0.0;
    seek(tick);
    return trace->segments[index].value;
}

inline Tick
PowerTrace::Cursor::nextChangeAfter(Tick tick)
{
    if (trace == nullptr || trace->segments.empty())
        return kTickNever;
    seek(tick);
    const auto &segments = trace->segments;
    const double current = segments[index].value;
    // First candidate strictly after tick: the next segment, or the
    // holding segment itself when tick still precedes the first start.
    std::size_t j = segments[index].start > tick ? index : index + 1;
    while (j < segments.size() && segments[j].value == current)
        ++j;
    if (j == segments.size())
        return kTickNever;
    return segments[j].start;
}

} // namespace energy
} // namespace quetzal

#endif // QUETZAL_ENERGY_POWER_TRACE_HPP
