/**
 * @file
 * Solar-harvester front end.
 *
 * Converts a dimensionless irradiance trace ([0, 1] of full sun) into
 * the electrical power delivered to the energy store, modeling the
 * paper's setup: N cells of a commercial solar product [45] feeding a
 * BQ25504 boost charger [88]. The datasheet maximum — cells at rated
 * full-sun output — is what the Zygarde/Protean "ZGO" baseline uses
 * for its static thresholds; the paper observes real traces rarely
 * approach it, which this model reproduces (irradiance is usually
 * well below 1).
 */

#ifndef QUETZAL_ENERGY_HARVESTER_HPP
#define QUETZAL_ENERGY_HARVESTER_HPP

#include "energy/power_trace.hpp"
#include "util/types.hpp"

namespace quetzal {
namespace energy {

/** Configuration for a Harvester. */
struct HarvesterConfig
{
    int cellCount = 6;             ///< paper Table 1 / section 6.4
    Watts cellRatedPower = 50e-3;  ///< per-cell full-sun rating
    double converterEfficiency = 0.8; ///< BQ25504-class boost efficiency
};

/**
 * Maps irradiance to harvested electrical power.
 */
class Harvester
{
  public:
    explicit Harvester(const HarvesterConfig &config);

    /** Static configuration. */
    const HarvesterConfig &config() const { return cfg; }

    /**
     * Rated (datasheet) maximum electrical output: what a designer
     * reading the datasheet would believe the harvester delivers.
     */
    Watts datasheetMaxPower() const;

    /** Electrical power for a given irradiance (clamped to >= 0). */
    Watts powerFromIrradiance(double irradiance) const;

    /**
     * Convert an irradiance trace into an electrical power trace by
     * applying powerFromIrradiance() segment-wise.
     */
    PowerTrace powerTrace(const PowerTrace &irradiance) const;

  private:
    HarvesterConfig cfg;
};

} // namespace energy
} // namespace quetzal

#endif // QUETZAL_ENERGY_HARVESTER_HPP
