#include "energy/power_trace.hpp"

#include <algorithm>
#include <istream>
#include <ostream>

#include "util/csv.hpp"
#include "util/logging.hpp"

namespace quetzal {
namespace energy {

PowerTrace::PowerTrace(std::vector<Segment> segments_)
    : segments(std::move(segments_))
{
    for (std::size_t i = 1; i < segments.size(); ++i) {
        if (segments[i].start <= segments[i - 1].start)
            util::panic("PowerTrace segments must be strictly sorted");
    }
}

PowerTrace
PowerTrace::fromSamples(const std::vector<double> &samples, Tick interval)
{
    if (interval <= 0)
        util::panic("PowerTrace sample interval must be positive");
    std::vector<Segment> segments;
    segments.reserve(samples.size());
    Tick start = 0;
    for (double sample : samples) {
        // Merge runs of equal values to keep segment queries cheap.
        if (segments.empty() || segments.back().value != sample)
            segments.push_back({start, sample});
        start += interval;
    }
    return PowerTrace(std::move(segments));
}

PowerTrace
PowerTrace::constant(double value)
{
    return PowerTrace({{0, value}});
}

void
PowerTrace::append(Tick start, double value)
{
    if (!segments.empty() && start <= segments.back().start)
        util::panic(util::msg("PowerTrace::append out of order: ", start));
    segments.push_back({start, value});
}

double
PowerTrace::valueAt(Tick tick) const
{
    if (segments.empty())
        return 0.0;
    // First segment starting after tick; the one before it holds.
    auto it = std::upper_bound(
        segments.begin(), segments.end(), tick,
        [](Tick t, const Segment &seg) { return t < seg.start; });
    if (it == segments.begin())
        return segments.front().value;
    return std::prev(it)->value;
}

Tick
PowerTrace::nextChangeAfter(Tick tick) const
{
    if (segments.empty())
        return kTickNever;
    // One search locates both the holding segment (the element before
    // the upper bound, which gives the current value) and the first
    // candidate change point.
    auto it = std::upper_bound(
        segments.begin(), segments.end(), tick,
        [](Tick t, const Segment &seg) { return t < seg.start; });
    const double current = it == segments.begin()
        ? segments.front().value : std::prev(it)->value;
    // Skip forward over segments that do not actually change the value
    // (possible when a trace was built via append with equal values).
    while (it != segments.end() && it->value == current)
        ++it;
    if (it == segments.end())
        return kTickNever;
    return it->start;
}

void
PowerTrace::Cursor::reseekBackward(Tick tick)
{
    // Backward query: re-seek from scratch.
    const auto &segments = trace->segments;
    const auto it = std::upper_bound(
        segments.begin(), segments.end(), tick,
        [](Tick t, const Segment &seg) { return t < seg.start; });
    index = it == segments.begin()
        ? 0
        : static_cast<std::size_t>(
              std::prev(it) - segments.begin());
}

double
PowerTrace::maxValue() const
{
    double best = 0.0;
    for (const auto &seg : segments)
        best = std::max(best, seg.value);
    return best;
}

double
PowerTrace::minValue() const
{
    if (segments.empty())
        return 0.0;
    double best = segments.front().value;
    for (const auto &seg : segments)
        best = std::min(best, seg.value);
    return best;
}

double
PowerTrace::meanValue(Tick horizon) const
{
    if (horizon <= 0 || segments.empty())
        return 0.0;
    // The first segment's value extends backward to tick 0; the last
    // segment's value extends forward forever.
    double weighted = 0.0;
    Tick covered = 0;
    double value = segments.front().value;
    for (const auto &seg : segments) {
        const Tick end = std::min(seg.start, horizon);
        if (end > covered) {
            weighted += value * static_cast<double>(end - covered);
            covered = end;
        }
        value = seg.value;
        if (covered >= horizon)
            break;
    }
    if (horizon > covered)
        weighted += value * static_cast<double>(horizon - covered);
    return weighted / static_cast<double>(horizon);
}

PowerTrace
PowerTrace::scaled(double factor) const
{
    std::vector<Segment> copy = segments;
    for (auto &seg : copy)
        seg.value *= factor;
    return PowerTrace(std::move(copy));
}

PowerTrace
PowerTrace::overlaid(const std::vector<OverlayWindow> &windows) const
{
    Tick previousEnd = kTickNever;
    bool anyActive = false;
    for (std::size_t i = 0; i < windows.size(); ++i) {
        const OverlayWindow &w = windows[i];
        if (w.end < w.start)
            util::panic("PowerTrace overlay window ends before it starts");
        if (i > 0 && w.start < previousEnd)
            util::panic("PowerTrace overlay windows must be sorted and "
                        "non-overlapping");
        previousEnd = w.end;
        if (w.end > w.start && w.factor != 1.0)
            anyActive = true;
    }
    if (!anyActive || segments.empty())
        return *this;

    // Merge the segment starts with the window boundaries: at every
    // boundary the new value is valueAt(t) times the factor of the
    // window holding at t (1 outside all windows).
    std::vector<Tick> boundaries;
    boundaries.reserve(segments.size() + 2 * windows.size());
    for (const Segment &seg : segments)
        boundaries.push_back(seg.start);
    for (const OverlayWindow &w : windows) {
        if (w.end == w.start || w.factor == 1.0)
            continue;
        boundaries.push_back(w.start);
        boundaries.push_back(w.end);
    }
    std::sort(boundaries.begin(), boundaries.end());
    boundaries.erase(std::unique(boundaries.begin(), boundaries.end()),
                     boundaries.end());

    auto factorAt = [&](Tick tick) {
        for (const OverlayWindow &w : windows) {
            if (tick < w.start)
                break;
            if (tick < w.end)
                return w.factor;
        }
        return 1.0;
    };

    std::vector<Segment> merged;
    merged.reserve(boundaries.size());
    for (Tick tick : boundaries) {
        const double value = valueAt(tick) * factorAt(tick);
        if (merged.empty() || merged.back().value != value)
            merged.push_back({tick, value});
    }
    return PowerTrace(std::move(merged));
}

void
PowerTrace::writeCsv(std::ostream &out) const
{
    util::CsvWriter writer(out);
    writer.comment("time_seconds,value");
    for (const auto &seg : segments)
        writer.row(std::vector<double>{ticksToSeconds(seg.start),
                                       seg.value});
}

PowerTrace
PowerTrace::readCsv(std::istream &in)
{
    std::vector<Segment> segments;
    for (const auto &row : util::readCsv(in)) {
        if (row.size() != 2)
            util::fatal("power trace CSV rows must be time,value");
        segments.push_back({secondsToTicks(util::parseDouble(row[0])),
                            util::parseDouble(row[1])});
    }
    return PowerTrace(std::move(segments));
}

} // namespace energy
} // namespace quetzal
