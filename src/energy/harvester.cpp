#include "energy/harvester.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace quetzal {
namespace energy {

Harvester::Harvester(const HarvesterConfig &config) : cfg(config)
{
    if (cfg.cellCount <= 0)
        util::fatal(util::msg("harvester cell count must be positive: ",
                              cfg.cellCount));
    if (cfg.cellRatedPower <= 0.0)
        util::fatal("harvester cell rated power must be positive");
    if (cfg.converterEfficiency <= 0.0 || cfg.converterEfficiency > 1.0)
        util::fatal(util::msg("converter efficiency out of (0,1]: ",
                              cfg.converterEfficiency));
}

Watts
Harvester::datasheetMaxPower() const
{
    return static_cast<double>(cfg.cellCount) * cfg.cellRatedPower *
        cfg.converterEfficiency;
}

Watts
Harvester::powerFromIrradiance(double irradiance) const
{
    return datasheetMaxPower() * std::max(0.0, irradiance);
}

PowerTrace
Harvester::powerTrace(const PowerTrace &irradiance) const
{
    return irradiance.scaled(datasheetMaxPower());
}

} // namespace energy
} // namespace quetzal
