/**
 * @file
 * Streaming statistics used by metrics collection, trace validation
 * tests and benchmark reporting.
 */

#ifndef QUETZAL_UTIL_STATS_HPP
#define QUETZAL_UTIL_STATS_HPP

#include <cstddef>
#include <vector>

namespace quetzal {
namespace util {

/**
 * Welford-style running mean/variance with min/max tracking.
 * Numerically stable; O(1) per sample.
 */
class RunningStats
{
  public:
    /** Add one sample. Inline: called once per completed job. */
    void
    add(double sample)
    {
        if (n == 0) {
            minSample = sample;
            maxSample = sample;
        } else {
            minSample = sample < minSample ? sample : minSample;
            maxSample = sample > maxSample ? sample : maxSample;
        }
        ++n;
        total += sample;
        const double delta = sample - runningMean;
        runningMean += delta / static_cast<double>(n);
        m2 += delta * (sample - runningMean);
    }

    /** Merge another accumulator into this one. */
    void merge(const RunningStats &other);

    /** Number of samples seen. */
    std::size_t count() const { return n; }

    /** Sample mean (0 if empty). */
    double mean() const { return n ? runningMean : 0.0; }

    /** Unbiased sample variance (0 if fewer than two samples). */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Smallest sample (0 if empty). */
    double min() const { return n ? minSample : 0.0; }

    /** Largest sample (0 if empty). */
    double max() const { return n ? maxSample : 0.0; }

    /** Sum of all samples. */
    double sum() const { return total; }

    /** Accumulator internals, for checkpoint/restore. */
    struct State
    {
        std::size_t n = 0;
        double runningMean = 0.0;
        double m2 = 0.0;
        double minSample = 0.0;
        double maxSample = 0.0;
        double total = 0.0;
    };

    /** Snapshot the accumulator (see State). */
    State exportState() const
    {
        return State{n, runningMean, m2, minSample, maxSample, total};
    }

    /** Restore a snapshot taken with exportState(). */
    void importState(const State &snapshot)
    {
        n = snapshot.n;
        runningMean = snapshot.runningMean;
        m2 = snapshot.m2;
        minSample = snapshot.minSample;
        maxSample = snapshot.maxSample;
        total = snapshot.total;
    }

  private:
    std::size_t n = 0;
    double runningMean = 0.0;
    double m2 = 0.0;
    double minSample = 0.0;
    double maxSample = 0.0;
    double total = 0.0;
};

/**
 * Fixed-bin histogram over [lo, hi); samples outside the range land
 * in saturating edge bins.
 */
class Histogram
{
  public:
    /**
     * @param lo lower edge of the first bin
     * @param hi upper edge of the last bin (must exceed lo)
     * @param bins number of bins (>= 1)
     */
    Histogram(double lo, double hi, std::size_t bins);

    /** Add one sample. */
    void add(double sample);

    /** Count in the given bin. */
    std::size_t binCount(std::size_t bin) const;

    /** Number of bins. */
    std::size_t bins() const { return counts.size(); }

    /** Total samples added. */
    std::size_t total() const { return n; }

    /** Center value of a bin. */
    double binCenter(std::size_t bin) const;

    /**
     * Linear-interpolated quantile estimate, q in [0, 1].
     * Returns lo when empty.
     */
    double quantile(double q) const;

  private:
    double lo;
    double hi;
    std::vector<std::size_t> counts;
    std::size_t n = 0;
};

/** Geometric mean of a set of strictly positive values (1 if empty). */
double geometricMean(const std::vector<double> &values);

/** Relative error |actual - expected| / |expected| (expected != 0). */
double relativeError(double actual, double expected);

} // namespace util
} // namespace quetzal

#endif // QUETZAL_UTIL_STATS_HPP
