/**
 * @file
 * Fixed-capacity ring buffer template.
 *
 * Used wherever the runtime needs bounded FIFO storage with O(1)
 * push/pop and stable indices-from-front iteration (input buffer
 * entries, recent-observation windows).
 */

#ifndef QUETZAL_UTIL_RING_BUFFER_HPP
#define QUETZAL_UTIL_RING_BUFFER_HPP

#include <cstddef>
#include <vector>

#include "util/logging.hpp"

namespace quetzal {
namespace util {

/**
 * Bounded FIFO with O(1) pushBack/popFront and random access by
 * logical index (0 == oldest element).
 */
template <typename T>
class RingBuffer
{
  public:
    /** Construct with a fixed capacity (> 0). */
    explicit RingBuffer(std::size_t capacity)
        : slots(capacity), cap(capacity)
    {
        if (capacity == 0)
            panic("RingBuffer capacity must be positive");
    }

    /** Maximum number of elements. */
    std::size_t capacity() const { return cap; }

    /** Current number of elements. */
    std::size_t size() const { return count; }

    bool empty() const { return count == 0; }
    bool full() const { return count == cap; }

    /**
     * Append to the back. Returns false (and drops the value) when
     * full — the caller decides whether that constitutes an overflow
     * event worth recording.
     */
    bool
    pushBack(T value)
    {
        if (full())
            return false;
        slots[(head + count) % cap] = std::move(value);
        ++count;
        return true;
    }

    /** Remove and return the oldest element. Panics when empty. */
    T
    popFront()
    {
        if (empty())
            panic("RingBuffer::popFront on empty buffer");
        T value = std::move(slots[head]);
        head = (head + 1) % cap;
        --count;
        return value;
    }

    /** Oldest element. Panics when empty. */
    const T &
    front() const
    {
        if (empty())
            panic("RingBuffer::front on empty buffer");
        return slots[head];
    }

    /** Newest element. Panics when empty. */
    const T &
    back() const
    {
        if (empty())
            panic("RingBuffer::back on empty buffer");
        return slots[(head + count - 1) % cap];
    }

    /** Element at logical index (0 == oldest). Panics out of range. */
    const T &
    at(std::size_t index) const
    {
        if (index >= count)
            panic(msg("RingBuffer index out of range: ", index,
                      " >= ", count));
        return slots[(head + index) % cap];
    }

    /** Mutable access at logical index. Panics out of range. */
    T &
    at(std::size_t index)
    {
        return const_cast<T &>(
            static_cast<const RingBuffer &>(*this).at(index));
    }

    /**
     * Remove the element at logical index, preserving the order of
     * the others. O(n); used only on small buffers (<= tens of
     * entries) where the scheduler removes a non-head input.
     */
    T
    removeAt(std::size_t index)
    {
        T value = std::move(at(index));
        for (std::size_t i = index; i + 1 < count; ++i)
            at(i) = std::move(at(i + 1));
        --count;
        return value;
    }

    /** Discard all contents. */
    void
    clear()
    {
        head = 0;
        count = 0;
    }

  private:
    std::vector<T> slots;
    std::size_t cap;
    std::size_t head = 0;
    std::size_t count = 0;
};

} // namespace util
} // namespace quetzal

#endif // QUETZAL_UTIL_RING_BUFFER_HPP
