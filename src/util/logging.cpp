#include "util/logging.hpp"

#include <cstdlib>
#include <iostream>

namespace quetzal {
namespace util {

namespace {

LogLevel globalLevel = LogLevel::Normal;

} // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

LogLevel
logLevel()
{
    return globalLevel;
}

void
panic(const std::string &message)
{
    std::cerr << "panic: " << message << std::endl;
    std::abort();
}

void
fatal(const std::string &message)
{
    std::cerr << "fatal: " << message << std::endl;
    std::exit(1);
}

void
warn(const std::string &message)
{
    if (globalLevel != LogLevel::Silent)
        std::cerr << "warn: " << message << std::endl;
}

void
inform(const std::string &message)
{
    if (globalLevel != LogLevel::Silent)
        std::cout << "info: " << message << std::endl;
}

void
debug(const std::string &message)
{
    if (globalLevel == LogLevel::Verbose)
        std::cout << "debug: " << message << std::endl;
}

} // namespace util
} // namespace quetzal
