/**
 * @file
 * Minimal CSV reading/writing, used for power-trace and event-trace
 * persistence and for benchmark result dumps.
 *
 * Supports the subset of CSV the project emits: comma-separated
 * fields, optional '#' comment lines, no quoting/escaping (fields
 * must not contain commas or newlines).
 */

#ifndef QUETZAL_UTIL_CSV_HPP
#define QUETZAL_UTIL_CSV_HPP

#include <iosfwd>
#include <string>
#include <vector>

namespace quetzal {
namespace util {

/** One parsed CSV row. */
using CsvRow = std::vector<std::string>;

/**
 * Parse CSV from a stream. Blank lines and lines starting with '#'
 * are skipped. Whitespace around fields is trimmed.
 */
std::vector<CsvRow> readCsv(std::istream &in);

/** Parse CSV from a file; calls fatal() if the file cannot be read. */
std::vector<CsvRow> readCsvFile(const std::string &path);

/** Writer that streams rows to an ostream. */
class CsvWriter
{
  public:
    /** Write to the given stream; the stream must outlive the writer. */
    explicit CsvWriter(std::ostream &out);

    /** Write a comment line ("# ..."). */
    void comment(const std::string &text);

    /** Write one row of string fields. */
    void row(const CsvRow &fields);

    /** Write one row of numeric fields. */
    void row(const std::vector<double> &fields);

  private:
    std::ostream &out;
};

/** Parse a field as double; calls fatal() on malformed input. */
double parseDouble(const std::string &field);

/** Parse a field as int64; calls fatal() on malformed input. */
long long parseInt(const std::string &field);

} // namespace util
} // namespace quetzal

#endif // QUETZAL_UTIL_CSV_HPP
