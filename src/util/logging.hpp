/**
 * @file
 * Logging and error-termination helpers.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (a Quetzal bug; aborts), fatal() is for unrecoverable
 * user/configuration errors (clean exit with an error code), warn()
 * and inform() are non-terminating status channels.
 */

#ifndef QUETZAL_UTIL_LOGGING_HPP
#define QUETZAL_UTIL_LOGGING_HPP

#include <sstream>
#include <string>

namespace quetzal {
namespace util {

/** Verbosity levels for the global logger. */
enum class LogLevel {
    Silent,  ///< suppress warn/inform output (fatal/panic still print)
    Normal,  ///< print warnings and informational messages
    Verbose, ///< additionally print debug traces
};

/** Set the process-wide log level. */
void setLogLevel(LogLevel level);

/** Current process-wide log level. */
LogLevel logLevel();

/**
 * Terminate with an internal-error diagnostic. Call when an invariant
 * that no configuration should be able to violate has been violated.
 * Never returns.
 */
[[noreturn]] void panic(const std::string &message);

/**
 * Terminate with a user-error diagnostic (bad configuration, invalid
 * arguments). Never returns.
 */
[[noreturn]] void fatal(const std::string &message);

/** Print a warning about suspicious but survivable conditions. */
void warn(const std::string &message);

/** Print an informational status message. */
void inform(const std::string &message);

/** Print a debug trace (only at LogLevel::Verbose). */
void debug(const std::string &message);

/**
 * Build a message from stream-insertable pieces, e.g.
 * `fatal(msg("bad cell count ", cells))`.
 */
template <typename... Args>
std::string
msg(Args &&...args)
{
    std::ostringstream out;
    (out << ... << args);
    return out.str();
}

} // namespace util
} // namespace quetzal

#endif // QUETZAL_UTIL_LOGGING_HPP
