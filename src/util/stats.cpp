#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace quetzal {
namespace util {

void
RunningStats::merge(const RunningStats &other)
{
    if (other.n == 0)
        return;
    if (n == 0) {
        *this = other;
        return;
    }
    const double delta = other.runningMean - runningMean;
    const auto combined = n + other.n;
    m2 += other.m2 + delta * delta *
        static_cast<double>(n) * static_cast<double>(other.n) /
        static_cast<double>(combined);
    runningMean += delta * static_cast<double>(other.n) /
        static_cast<double>(combined);
    minSample = std::min(minSample, other.minSample);
    maxSample = std::max(maxSample, other.maxSample);
    total += other.total;
    n = combined;
}

double
RunningStats::variance() const
{
    if (n < 2)
        return 0.0;
    return m2 / static_cast<double>(n - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(double lo_, double hi_, std::size_t bins_)
    : lo(lo_), hi(hi_), counts(bins_, 0)
{
    if (bins_ == 0)
        panic("Histogram requires at least one bin");
    if (!(hi > lo))
        panic(msg("Histogram range invalid: [", lo, ", ", hi, ")"));
}

void
Histogram::add(double sample)
{
    const double span = hi - lo;
    double norm = (sample - lo) / span;
    norm = std::clamp(norm, 0.0, 1.0);
    auto bin = static_cast<std::size_t>(
        norm * static_cast<double>(counts.size()));
    bin = std::min(bin, counts.size() - 1);
    ++counts[bin];
    ++n;
}

std::size_t
Histogram::binCount(std::size_t bin) const
{
    if (bin >= counts.size())
        panic(msg("Histogram bin out of range: ", bin));
    return counts[bin];
}

double
Histogram::binCenter(std::size_t bin) const
{
    const double width = (hi - lo) / static_cast<double>(counts.size());
    return lo + (static_cast<double>(bin) + 0.5) * width;
}

double
Histogram::quantile(double q) const
{
    if (n == 0)
        return lo;
    q = std::clamp(q, 0.0, 1.0);
    const auto target = static_cast<double>(n) * q;
    double cumulative = 0.0;
    for (std::size_t bin = 0; bin < counts.size(); ++bin) {
        const double next = cumulative + static_cast<double>(counts[bin]);
        if (next >= target) {
            const double width = (hi - lo) /
                static_cast<double>(counts.size());
            const double within = counts[bin] == 0 ? 0.0 :
                (target - cumulative) / static_cast<double>(counts[bin]);
            return lo + (static_cast<double>(bin) + within) * width;
        }
        cumulative = next;
    }
    return hi;
}

double
geometricMean(const std::vector<double> &values)
{
    if (values.empty())
        return 1.0;
    double logSum = 0.0;
    for (double value : values) {
        if (value <= 0.0)
            panic(msg("geometricMean requires positive values, got ",
                      value));
        logSum += std::log(value);
    }
    return std::exp(logSum / static_cast<double>(values.size()));
}

double
relativeError(double actual, double expected)
{
    if (expected == 0.0)
        panic("relativeError: expected value is zero");
    return std::abs(actual - expected) / std::abs(expected);
}

} // namespace util
} // namespace quetzal
