/**
 * @file
 * Deterministic pseudo-random number generation for repeatable
 * experiments.
 *
 * The paper emphasizes precise repeatability of its experiments
 * (section 6.2 uses a secondary MCU purely to make event injection
 * repeatable). We get the same property in simulation by seeding
 * every stochastic component from an explicit 64-bit seed and using a
 * fixed, standard-library-independent generator (xoshiro256**), so
 * results are identical across platforms and standard libraries.
 */

#ifndef QUETZAL_UTIL_RANDOM_HPP
#define QUETZAL_UTIL_RANDOM_HPP

#include <array>
#include <cstdint>

namespace quetzal {
namespace util {

/**
 * xoshiro256** pseudo-random generator with SplitMix64 seeding.
 *
 * Satisfies the UniformRandomBitGenerator requirements, but the
 * distribution helpers below should be preferred over std
 * distributions (whose outputs are implementation-defined).
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed, expanded via SplitMix64. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type{0}; }

    /** Next raw 64-bit output. */
    result_type operator()();

    /** Uniform double in [0, 1). */
    double uniform01();

    /** Uniform double in [lo, hi). Requires lo <= hi. */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] inclusive. Requires lo <= hi. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Bernoulli trial with success probability p (clamped to [0,1]). */
    bool bernoulli(double p);

    /** Exponential variate with the given mean (> 0). */
    double exponential(double mean);

    /** Standard-normal variate (Box-Muller, cached pair). */
    double normal();

    /** Normal variate with given mean and standard deviation. */
    double normal(double mean, double stddev);

    /**
     * Log-normal variate parameterized by the mean and sigma of the
     * underlying normal (i.e. exp(N(mu, sigma))).
     */
    double lognormal(double mu, double sigma);

    /**
     * Fork an independent stream: derives a child generator whose
     * sequence is decorrelated from this one. Used to give each
     * stochastic subsystem (events, clouds, noise) its own stream so
     * adding draws to one does not perturb the others.
     */
    Rng fork();

    /**
     * Full generator state — the xoshiro words plus the Box-Muller
     * cache — so a checkpointed run resumes mid-sequence and every
     * later draw matches the uninterrupted run exactly.
     */
    struct State
    {
        std::array<std::uint64_t, 4> words = {};
        double cachedNormal = 0.0;
        bool hasCachedNormal = false;
    };

    /** Snapshot the generator state (see State). */
    State exportState() const
    {
        return State{state, cachedNormal, hasCachedNormal};
    }

    /** Restore a snapshot taken with exportState(). */
    void importState(const State &snapshot)
    {
        state = snapshot.words;
        cachedNormal = snapshot.cachedNormal;
        hasCachedNormal = snapshot.hasCachedNormal;
    }

  private:
    std::array<std::uint64_t, 4> state;
    double cachedNormal = 0.0;
    bool hasCachedNormal = false;
};

} // namespace util
} // namespace quetzal

#endif // QUETZAL_UTIL_RANDOM_HPP
