/**
 * @file
 * Byte-level wire primitives shared by the binary trace format
 * (obs/btrace.hpp) and the simulator checkpoint archive
 * (sim/checkpoint.hpp): LEB128 varints, zigzag signed mapping,
 * little-endian fixed-width scalars, bit-exact doubles, and CRC32.
 *
 * Everything here is a pure function of its inputs — no locale, no
 * platform formatting, no pointer values — so wire bytes are
 * identical across runs, thread counts and hosts. Doubles travel as
 * their raw IEEE-754 bit pattern (fixed64), which round-trips
 * exactly where decimal formatting would have to prove shortest-
 * round-trip properties.
 */

#ifndef QUETZAL_UTIL_WIRE_HPP
#define QUETZAL_UTIL_WIRE_HPP

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>

#if defined(__x86_64__) || defined(__i386__)
#include <nmmintrin.h>
#define QUETZAL_WIRE_X86_CRC 1
#endif

namespace quetzal {
namespace util {
namespace wire {

/**
 * @name CRC-32C (Castagnoli, reflected, poly 0x82F63B78)
 *
 * The checksum behind btrace chunks and checkpoint archives. The
 * Castagnoli polynomial (not IEEE 802.3) because x86 carries it in
 * silicon (SSE4.2 crc32); the software slice-by-8 fallback produces
 * bit-identical values, so wire bytes never depend on the host.
 */
/// @{
namespace detail {
constexpr std::uint32_t
crcEntry(std::uint32_t index)
{
    std::uint32_t crc = index;
    for (int bit = 0; bit < 8; ++bit)
        crc = (crc >> 1) ^ ((crc & 1u) ? 0x82F63B78u : 0u);
    return crc;
}

/**
 * Slice-by-8 tables: table[t][b] is the CRC contribution of byte b
 * seen t+1 positions before the end of an 8-byte block, so eight
 * lookups advance the CRC a full 8 bytes per iteration (~8x the
 * classic one-table byte loop on chunk-sized payloads).
 */
struct CrcTable
{
    std::uint32_t entry[8][256] = {};
    constexpr CrcTable()
    {
        for (std::uint32_t i = 0; i < 256; ++i)
            entry[0][i] = crcEntry(i);
        for (std::size_t t = 1; t < 8; ++t) {
            for (std::uint32_t i = 0; i < 256; ++i)
                entry[t][i] = (entry[t - 1][i] >> 8) ^
                    entry[0][entry[t - 1][i] & 0xFFu];
        }
    }
};

inline constexpr CrcTable kCrcTable{};

/** Advance a raw (pre-finalization) CRC state over `size` bytes. */
inline std::uint32_t
crc32cSoftware(std::uint32_t crc, const unsigned char *bytes,
               std::size_t size)
{
    const auto &table = kCrcTable.entry;
    // Explicit little-endian assembly keeps the result
    // byte-order-independent; the compiler folds it to two loads on
    // little-endian hosts.
    while (size >= 8) {
        const std::uint32_t lo = crc ^
            (static_cast<std::uint32_t>(bytes[0]) |
             static_cast<std::uint32_t>(bytes[1]) << 8 |
             static_cast<std::uint32_t>(bytes[2]) << 16 |
             static_cast<std::uint32_t>(bytes[3]) << 24);
        const std::uint32_t hi =
            static_cast<std::uint32_t>(bytes[4]) |
            static_cast<std::uint32_t>(bytes[5]) << 8 |
            static_cast<std::uint32_t>(bytes[6]) << 16 |
            static_cast<std::uint32_t>(bytes[7]) << 24;
        crc = table[7][lo & 0xFFu] ^ table[6][(lo >> 8) & 0xFFu] ^
            table[5][(lo >> 16) & 0xFFu] ^ table[4][lo >> 24] ^
            table[3][hi & 0xFFu] ^ table[2][(hi >> 8) & 0xFFu] ^
            table[1][(hi >> 16) & 0xFFu] ^ table[0][hi >> 24];
        bytes += 8;
        size -= 8;
    }
    for (std::size_t i = 0; i < size; ++i)
        crc = (crc >> 8) ^ table[0][(crc ^ bytes[i]) & 0xFFu];
    return crc;
}

#ifdef QUETZAL_WIRE_X86_CRC
[[gnu::target("sse4.2")]] inline std::uint32_t
crc32cHardware(std::uint32_t crc, const unsigned char *bytes,
               std::size_t size)
{
    std::uint64_t wide = crc;
    while (size >= 8) {
        std::uint64_t word;
        std::memcpy(&word, bytes, 8);
        wide = _mm_crc32_u64(wide, word);
        bytes += 8;
        size -= 8;
    }
    crc = static_cast<std::uint32_t>(wide);
    while (size-- > 0)
        crc = _mm_crc32_u8(crc, *bytes++);
    return crc;
}

inline bool
crc32cHaveHardware()
{
    static const bool have = __builtin_cpu_supports("sse4.2");
    return have;
}
#endif

inline std::uint32_t
crc32cUpdate(std::uint32_t crc, const void *data, std::size_t size)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
#ifdef QUETZAL_WIRE_X86_CRC
    if (crc32cHaveHardware())
        return crc32cHardware(crc, bytes, size);
#endif
    return crc32cSoftware(crc, bytes, size);
}
} // namespace detail

/** CRC-32C of a byte range. */
inline std::uint32_t
crc32(const void *data, std::size_t size)
{
    return detail::crc32cUpdate(0xFFFFFFFFu, data, size) ^ 0xFFFFFFFFu;
}

inline std::uint32_t
crc32(const std::string &bytes)
{
    return crc32(bytes.data(), bytes.size());
}

/** Incremental CRC-32C, for checksums spanning several buffers. */
class Crc32
{
  public:
    void
    update(const void *data, std::size_t size)
    {
        state = detail::crc32cUpdate(state, data, size);
    }

    std::uint32_t value() const { return state ^ 0xFFFFFFFFu; }

  private:
    std::uint32_t state = 0xFFFFFFFFu;
};
/// @}

/** @name Encoders (append to a byte string) */
/// @{
inline void
putVarint(std::string &out, std::uint64_t value)
{
    while (value >= 0x80u) {
        out.push_back(static_cast<char>((value & 0x7Fu) | 0x80u));
        value >>= 7;
    }
    out.push_back(static_cast<char>(value));
}

/** Zigzag-map a signed value so small magnitudes stay small. */
constexpr std::uint64_t
zigzag(std::int64_t value)
{
    return (static_cast<std::uint64_t>(value) << 1) ^
        static_cast<std::uint64_t>(value >> 63);
}

constexpr std::int64_t
unzigzag(std::uint64_t value)
{
    return static_cast<std::int64_t>(value >> 1) ^
        -static_cast<std::int64_t>(value & 1u);
}

inline void
putZigzag(std::string &out, std::int64_t value)
{
    putVarint(out, zigzag(value));
}

inline void
putFixed32(std::string &out, std::uint32_t value)
{
    for (int shift = 0; shift < 32; shift += 8)
        out.push_back(static_cast<char>((value >> shift) & 0xFFu));
}

inline void
putFixed64(std::string &out, std::uint64_t value)
{
    for (int shift = 0; shift < 64; shift += 8)
        out.push_back(static_cast<char>((value >> shift) & 0xFFu));
}

/** Bit-exact double: raw IEEE-754 pattern as fixed64. */
inline void
putDouble(std::string &out, double value)
{
    putFixed64(out, std::bit_cast<std::uint64_t>(value));
}

/** Length-prefixed byte string. */
inline void
putBytes(std::string &out, const std::string &bytes)
{
    putVarint(out, bytes.size());
    out.append(bytes);
}
/// @}

/**
 * @name Raw encoders (append through a char pointer)
 * Hot-path variants for fixed-bound records: encode into a stack
 * buffer with raw stores, then append the record to the output
 * string in one call, instead of paying a capacity check per byte.
 * Every function returns the advanced cursor; the caller guarantees
 * the buffer holds the worst case (10 bytes per varint, 8 per
 * fixed64). Byte-for-byte identical to the string encoders above.
 */
/// @{
inline char *
putVarintRaw(char *out, std::uint64_t value)
{
    // One- and two-byte values dominate real streams (field masks
    // drop zeros, ticks are delta-coded); peel those iterations so
    // the common cases are straight-line code.
    if (value < 0x80u) {
        *out++ = static_cast<char>(value);
        return out;
    }
    *out++ = static_cast<char>((value & 0x7Fu) | 0x80u);
    value >>= 7;
    if (value < 0x80u) {
        *out++ = static_cast<char>(value);
        return out;
    }
    *out++ = static_cast<char>((value & 0x7Fu) | 0x80u);
    value >>= 7;
    while (value >= 0x80u) {
        *out++ = static_cast<char>((value & 0x7Fu) | 0x80u);
        value >>= 7;
    }
    *out++ = static_cast<char>(value);
    return out;
}

inline char *
putZigzagRaw(char *out, std::int64_t value)
{
    return putVarintRaw(out, zigzag(value));
}

inline char *
putFixed64Raw(char *out, std::uint64_t value)
{
    if constexpr (std::endian::native == std::endian::little) {
        std::memcpy(out, &value, sizeof value);
        return out + sizeof value;
    } else {
        for (int shift = 0; shift < 64; shift += 8)
            *out++ = static_cast<char>((value >> shift) & 0xFFu);
        return out;
    }
}

inline char *
putDoubleRaw(char *out, double value)
{
    return putFixed64Raw(out, std::bit_cast<std::uint64_t>(value));
}
/// @}

/**
 * Bounds-checked decoder over a byte range. Every get* returns false
 * (and leaves the cursor unspecified) on truncation or malformed
 * input instead of trapping, so readers can turn corruption into a
 * clean diagnostic naming the file and offset.
 */
class Reader
{
  public:
    Reader(const void *data, std::size_t size)
        : cursor(static_cast<const unsigned char *>(data)),
          limit(cursor + size)
    {
    }

    explicit Reader(const std::string &bytes)
        : Reader(bytes.data(), bytes.size())
    {
    }

    /** Bytes not yet consumed. */
    std::size_t remaining() const
    {
        return static_cast<std::size_t>(limit - cursor);
    }

    bool atEnd() const { return cursor == limit; }

    bool
    getByte(std::uint8_t &value)
    {
        if (cursor == limit)
            return false;
        value = *cursor++;
        return true;
    }

    bool
    getVarint(std::uint64_t &value)
    {
        value = 0;
        for (int shift = 0; shift < 64; shift += 7) {
            if (cursor == limit)
                return false;
            const unsigned char byte = *cursor++;
            value |= static_cast<std::uint64_t>(byte & 0x7Fu) << shift;
            if ((byte & 0x80u) == 0)
                return shift < 63 || (byte >> 1) == 0;
        }
        return false;
    }

    bool
    getZigzag(std::int64_t &value)
    {
        std::uint64_t raw = 0;
        if (!getVarint(raw))
            return false;
        value = unzigzag(raw);
        return true;
    }

    bool
    getFixed32(std::uint32_t &value)
    {
        if (remaining() < 4)
            return false;
        std::uint32_t out = 0;
        for (int shift = 0; shift < 32; shift += 8)
            out |= static_cast<std::uint32_t>(*cursor++) << shift;
        value = out;
        return true;
    }

    bool
    getFixed64(std::uint64_t &value)
    {
        if (remaining() < 8)
            return false;
        std::uint64_t out = 0;
        for (int shift = 0; shift < 64; shift += 8)
            out |= static_cast<std::uint64_t>(*cursor++) << shift;
        value = out;
        return true;
    }

    bool
    getDouble(double &value)
    {
        std::uint64_t bits = 0;
        if (!getFixed64(bits))
            return false;
        value = std::bit_cast<double>(bits);
        return true;
    }

    bool
    getBytes(std::string &bytes)
    {
        std::uint64_t size = 0;
        if (!getVarint(size) || size > remaining())
            return false;
        bytes.assign(reinterpret_cast<const char *>(cursor),
                     static_cast<std::size_t>(size));
        cursor += size;
        return true;
    }

  private:
    const unsigned char *cursor;
    const unsigned char *limit;
};

} // namespace wire
} // namespace util
} // namespace quetzal

#endif // QUETZAL_UTIL_WIRE_HPP
