/**
 * @file
 * Q16.16 fixed-point arithmetic helpers.
 *
 * The on-device side of Quetzal targets MCUs without floating-point
 * units (MSP430) and, per the paper, must avoid integer division on
 * its hot path. The runtime's rate and probability bookkeeping is
 * expressed in Q16.16 so the implementation mirrors what would run on
 * the device: multiplications, shifts and table lookups only.
 */

#ifndef QUETZAL_UTIL_FIXED_POINT_HPP
#define QUETZAL_UTIL_FIXED_POINT_HPP

#include <cstdint>

namespace quetzal {
namespace util {

/** Q16.16 fixed-point value stored in a 32-bit signed integer. */
using Fixed = std::int32_t;

/** Number of fractional bits in a Fixed. */
inline constexpr int kFixedShift = 16;

/** The Fixed representation of 1.0. */
inline constexpr Fixed kFixedOne = Fixed{1} << kFixedShift;

/** Convert an integer to Fixed. */
constexpr Fixed
fixedFromInt(std::int32_t value)
{
    return value << kFixedShift;
}

/** Convert a double to Fixed (round to nearest). */
constexpr Fixed
fixedFromDouble(double value)
{
    const double scaled = value * static_cast<double>(kFixedOne);
    return static_cast<Fixed>(scaled >= 0 ? scaled + 0.5 : scaled - 0.5);
}

/** Convert a Fixed to double. */
constexpr double
fixedToDouble(Fixed value)
{
    return static_cast<double>(value) / static_cast<double>(kFixedOne);
}

/** Fixed multiply with 64-bit intermediate. */
constexpr Fixed
fixedMul(Fixed a, Fixed b)
{
    const std::int64_t wide =
        static_cast<std::int64_t>(a) * static_cast<std::int64_t>(b);
    return static_cast<Fixed>(wide >> kFixedShift);
}

/**
 * Multiply a Fixed fraction by an integer count, returning an
 * integer (floor). This is the only "scaling" operation the runtime
 * hot path needs; there is deliberately no fixedDiv here — Quetzal's
 * claim is that the hot path is division-free (divisions happen only
 * at profile time or via the hardware ratio engine).
 */
constexpr std::int64_t
fixedScale(Fixed fraction, std::int64_t count)
{
    const std::int64_t wide = static_cast<std::int64_t>(fraction) * count;
    return wide >> kFixedShift;
}

/**
 * Reciprocal table for window sizes that are powers of two: 1/w is a
 * shift, so converting a ones-count into a Q16.16 fraction costs one
 * shift. Windows in Quetzal (<task-window>=64, <arrival-window>=256)
 * are powers of two for exactly this reason.
 */
constexpr Fixed
fixedFractionPow2(std::int32_t ones, int log2Window)
{
    return static_cast<Fixed>(
        (static_cast<std::int64_t>(ones) << kFixedShift) >> log2Window);
}

} // namespace util
} // namespace quetzal

#endif // QUETZAL_UTIL_FIXED_POINT_HPP
