/**
 * @file
 * SmallVec: a vector with inline storage for its first N elements.
 *
 * The scheduling hot path builds one option-per-task vector per job
 * decision; real applications have a handful of tasks per job, so a
 * heap allocation per decision is pure overhead. SmallVec keeps up
 * to N elements in the object itself and only touches the heap when
 * a pathological configuration exceeds the inline capacity.
 *
 * Restricted to trivially copyable element types: growth and copies
 * are memcpy, destructors never run per element, and moved-from
 * objects are simply empty. That covers the index/flag vectors the
 * hot path needs without re-implementing std::vector.
 */

#ifndef QUETZAL_UTIL_SMALL_VEC_HPP
#define QUETZAL_UTIL_SMALL_VEC_HPP

#include <cstddef>
#include <cstring>
#include <initializer_list>
#include <new>
#include <type_traits>
#include <vector>

namespace quetzal {
namespace util {

template <typename T, std::size_t N>
class SmallVec
{
    static_assert(std::is_trivially_copyable<T>::value,
                  "SmallVec is restricted to trivially copyable types");
    static_assert(N > 0, "SmallVec needs a positive inline capacity");

  public:
    SmallVec() = default;

    SmallVec(std::size_t count, const T &value) { assign(count, value); }

    SmallVec(std::initializer_list<T> init)
    {
        reserve(init.size());
        for (const T &v : init)
            elems[used++] = v;
    }

    SmallVec(const SmallVec &other) { *this = other; }

    SmallVec(SmallVec &&other) noexcept { *this = std::move(other); }

    SmallVec &
    operator=(const SmallVec &other)
    {
        if (this == &other)
            return *this;
        used = 0;
        reserve(other.used);
        std::memcpy(elems, other.elems, other.used * sizeof(T));
        used = other.used;
        return *this;
    }

    SmallVec &
    operator=(SmallVec &&other) noexcept
    {
        if (this == &other)
            return *this;
        release();
        if (other.heap != nullptr) {
            // Steal the heap block; the donor reverts to inline.
            heap = other.heap;
            cap = other.cap;
            used = other.used;
            elems = heap;
            other.heap = nullptr;
            other.cap = N;
            other.used = 0;
            other.elems = other.inlineBuf;
        } else {
            std::memcpy(inlineBuf, other.inlineBuf,
                        other.used * sizeof(T));
            used = other.used;
            other.used = 0;
        }
        return *this;
    }

    ~SmallVec() { release(); }

    std::size_t size() const { return used; }
    bool empty() const { return used == 0; }
    std::size_t capacity() const { return cap; }

    T *data() { return elems; }
    const T *data() const { return elems; }

    T *begin() { return elems; }
    T *end() { return elems + used; }
    const T *begin() const { return elems; }
    const T *end() const { return elems + used; }

    T &operator[](std::size_t i) { return elems[i]; }
    const T &operator[](std::size_t i) const { return elems[i]; }

    void clear() { used = 0; }

    void
    reserve(std::size_t want)
    {
        if (want <= cap)
            return;
        std::size_t grown = cap * 2;
        if (grown < want)
            grown = want;
        T *const block = new T[grown];
        std::memcpy(block, elems, used * sizeof(T));
        delete[] heap;
        heap = block;
        elems = block;
        cap = grown;
    }

    void
    push_back(const T &value)
    {
        reserve(used + 1);
        elems[used++] = value;
    }

    /** Resize; new elements are value-initialized (zeroed). */
    void
    resize(std::size_t count)
    {
        reserve(count);
        if (count > used)
            std::memset(elems + used, 0, (count - used) * sizeof(T));
        used = count;
    }

    void
    assign(std::size_t count, const T &value)
    {
        reserve(count);
        for (std::size_t i = 0; i < count; ++i)
            elems[i] = value;
        used = count;
    }

  private:
    void
    release()
    {
        delete[] heap;
        heap = nullptr;
        cap = N;
        elems = inlineBuf;
        used = 0;
    }

    T inlineBuf[N];
    T *heap = nullptr;
    T *elems = inlineBuf;
    std::size_t used = 0;
    std::size_t cap = N;
};

template <typename T, std::size_t N>
bool
operator==(const SmallVec<T, N> &a, const SmallVec<T, N> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (!(a[i] == b[i]))
            return false;
    }
    return true;
}

template <typename T, std::size_t N>
bool
operator!=(const SmallVec<T, N> &a, const SmallVec<T, N> &b)
{
    return !(a == b);
}

/** Element-wise comparison with std::vector (test convenience). */
template <typename T, std::size_t N>
bool
operator==(const SmallVec<T, N> &a, const std::vector<T> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (!(a[i] == b[i]))
            return false;
    }
    return true;
}

template <typename T, std::size_t N>
bool
operator==(const std::vector<T> &a, const SmallVec<T, N> &b)
{
    return b == a;
}

} // namespace util
} // namespace quetzal

#endif // QUETZAL_UTIL_SMALL_VEC_HPP
