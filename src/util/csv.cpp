#include "util/csv.hpp"

#include <cstdlib>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/logging.hpp"

namespace quetzal {
namespace util {

namespace {

std::string
trim(const std::string &text)
{
    const auto first = text.find_first_not_of(" \t\r");
    if (first == std::string::npos)
        return "";
    const auto last = text.find_last_not_of(" \t\r");
    return text.substr(first, last - first + 1);
}

} // namespace

std::vector<CsvRow>
readCsv(std::istream &in)
{
    std::vector<CsvRow> rows;
    std::string line;
    while (std::getline(in, line)) {
        const std::string trimmed = trim(line);
        if (trimmed.empty() || trimmed.front() == '#')
            continue;
        CsvRow fields;
        std::stringstream splitter(trimmed);
        std::string field;
        while (std::getline(splitter, field, ','))
            fields.push_back(trim(field));
        rows.push_back(std::move(fields));
    }
    return rows;
}

std::vector<CsvRow>
readCsvFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal(msg("cannot open CSV file: ", path));
    return readCsv(in);
}

CsvWriter::CsvWriter(std::ostream &out_) : out(out_) {}

void
CsvWriter::comment(const std::string &text)
{
    out << "# " << text << "\n";
}

void
CsvWriter::row(const CsvRow &fields)
{
    for (std::size_t i = 0; i < fields.size(); ++i) {
        if (i)
            out << ",";
        out << fields[i];
    }
    out << "\n";
}

void
CsvWriter::row(const std::vector<double> &fields)
{
    for (std::size_t i = 0; i < fields.size(); ++i) {
        if (i)
            out << ",";
        out << fields[i];
    }
    out << "\n";
}

double
parseDouble(const std::string &field)
{
    char *end = nullptr;
    const double value = std::strtod(field.c_str(), &end);
    if (end == field.c_str() || *end != '\0')
        fatal(msg("malformed numeric CSV field: '", field, "'"));
    return value;
}

long long
parseInt(const std::string &field)
{
    char *end = nullptr;
    const long long value = std::strtoll(field.c_str(), &end, 10);
    if (end == field.c_str() || *end != '\0')
        fatal(msg("malformed integer CSV field: '", field, "'"));
    return value;
}

} // namespace util
} // namespace quetzal
