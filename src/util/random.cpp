#include "util/random.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace quetzal {
namespace util {

namespace {

/** SplitMix64 step, used only to expand seeds. */
std::uint64_t
splitMix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &word : state)
        word = splitMix64(s);
}

Rng::result_type
Rng::operator()()
{
    const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
    const std::uint64_t t = state[1] << 17;

    state[2] ^= state[0];
    state[3] ^= state[1];
    state[1] ^= state[2];
    state[0] ^= state[3];
    state[2] ^= t;
    state[3] = rotl(state[3], 45);

    return result;
}

double
Rng::uniform01()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    if (lo > hi)
        panic(msg("uniform bounds inverted: ", lo, " > ", hi));
    return lo + (hi - lo) * uniform01();
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    if (lo > hi)
        panic(msg("uniformInt bounds inverted: ", lo, " > ", hi));
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) {
        // Full 64-bit range requested.
        return static_cast<std::int64_t>((*this)());
    }
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = Rng::max() - Rng::max() % span;
    std::uint64_t draw;
    do {
        draw = (*this)();
    } while (draw >= limit);
    return lo + static_cast<std::int64_t>(draw % span);
}

bool
Rng::bernoulli(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform01() < p;
}

double
Rng::exponential(double mean)
{
    if (mean <= 0.0)
        panic(msg("exponential mean must be positive, got ", mean));
    double u;
    do {
        u = uniform01();
    } while (u <= 0.0);
    return -mean * std::log(u);
}

double
Rng::normal()
{
    if (hasCachedNormal) {
        hasCachedNormal = false;
        return cachedNormal;
    }
    double u1;
    do {
        u1 = uniform01();
    } while (u1 <= 0.0);
    const double u2 = uniform01();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double angle = 2.0 * M_PI * u2;
    cachedNormal = radius * std::sin(angle);
    hasCachedNormal = true;
    return radius * std::cos(angle);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

double
Rng::lognormal(double mu, double sigma)
{
    return std::exp(normal(mu, sigma));
}

Rng
Rng::fork()
{
    const std::uint64_t childSeed = (*this)() ^ 0xa5a5a5a5a5a5a5a5ull;
    return Rng(childSeed);
}

} // namespace util
} // namespace quetzal
