/**
 * @file
 * Fundamental unit types and conversion helpers shared by all Quetzal
 * modules.
 *
 * Simulated time is discretized to 1 ms ticks (the paper's
 * fixed-increment simulator, section 6.3). Physical quantities
 * (energy, power, voltage, current) use double-precision SI units;
 * the only place integer arithmetic matters for fidelity is the
 * on-device runtime hot path, which lives in hw::RatioEngine and
 * operates on ADC codes and pre-multiplied tick tables.
 */

#ifndef QUETZAL_UTIL_TYPES_HPP
#define QUETZAL_UTIL_TYPES_HPP

#include <cstdint>
#include <limits>

namespace quetzal {

/** Simulated time in ticks. One tick is exactly one millisecond. */
using Tick = std::int64_t;

/** Number of ticks per simulated second. */
inline constexpr Tick kTicksPerSecond = 1000;

/** A tick value that compares greater than any reachable time. */
inline constexpr Tick kTickNever = std::numeric_limits<Tick>::max();

/** Energy in joules. */
using Joules = double;

/** Power in watts. */
using Watts = double;

/** Electric potential in volts. */
using Volts = double;

/** Electric current in amperes. */
using Amperes = double;

/** Capacitance in farads. */
using Farads = double;

/** Temperature in kelvin. */
using Kelvin = double;

/** Convert seconds (fractional allowed) to whole ticks, truncating. */
constexpr Tick
secondsToTicks(double seconds)
{
    return static_cast<Tick>(seconds * static_cast<double>(kTicksPerSecond));
}

/** Convert ticks to seconds. */
constexpr double
ticksToSeconds(Tick ticks)
{
    return static_cast<double>(ticks) / static_cast<double>(kTicksPerSecond);
}

/** Convert milliseconds to ticks (identity under the 1 ms tick). */
constexpr Tick
millisecondsToTicks(double ms)
{
    return static_cast<Tick>(ms);
}

/** Energy drawn by a constant power over a tick span. */
constexpr Joules
energyOver(Watts power, Tick ticks)
{
    return power * ticksToSeconds(ticks);
}

} // namespace quetzal

#endif // QUETZAL_UTIL_TYPES_HPP
