/**
 * @file
 * Synthetic sensing-event generator and environment presets.
 *
 * Substitute for the VIRAT surveillance dataset [67] the paper samples
 * event durations and interarrival times from (DESIGN.md section 2).
 * Durations follow a truncated log-normal (heavy-tailed, like real
 * surveillance activity) capped at a per-environment *maximum
 * interesting duration* — the paper's Table 1 knob distinguishing the
 * "More Crowded" (600 s), "Crowded" (60 s) and "Less Crowded" (20 s)
 * environments, plus the 10 s cap used for the MSP430 study.
 * Interarrival gaps are exponential. Everything is seeded.
 */

#ifndef QUETZAL_TRACE_EVENT_GENERATOR_HPP
#define QUETZAL_TRACE_EVENT_GENERATOR_HPP

#include <cstdint>
#include <string>

#include "trace/event_trace.hpp"
#include "util/types.hpp"

namespace quetzal {
namespace trace {

/** The paper's named sensing environments (Table 1). */
enum class EnvironmentPreset {
    MoreCrowded, ///< max interesting duration 600 s
    Crowded,     ///< max interesting duration 60 s
    LessCrowded, ///< max interesting duration 20 s
    Msp430Short, ///< max interesting duration 10 s (MSP430 study)
};

/** Human-readable preset name. */
std::string environmentName(EnvironmentPreset preset);

/** Configuration for EventGenerator. */
struct EventGeneratorConfig
{
    std::size_t eventCount = 1000; ///< 1000 for sims, 100 for hw expt
    double meanInterarrivalSeconds = 90.0; ///< gap between events
    double maxInterestingSeconds = 60.0;   ///< Table 1 duration cap
    double maxUninterestingSeconds = 15.0; ///< cars pass quickly
    double minDurationSeconds = 2.0;       ///< shortest visible event
    double durationSigma = 0.9;    ///< log-normal shape
    double interestingProbability = 0.5;   ///< event class mix
    std::uint64_t seed = 7;

    /** Preset factory applying the paper's per-environment caps. */
    static EventGeneratorConfig forPreset(EnvironmentPreset preset,
                                          std::size_t eventCount = 1000,
                                          std::uint64_t seed = 7);
};

/**
 * Seeded generator of event traces.
 */
class EventGenerator
{
  public:
    explicit EventGenerator(const EventGeneratorConfig &config);

    /** Static configuration. */
    const EventGeneratorConfig &config() const { return cfg; }

    /** Generate a trace with cfg.eventCount events starting near 0. */
    EventTrace generate() const;

  private:
    EventGeneratorConfig cfg;
};

} // namespace trace
} // namespace quetzal

#endif // QUETZAL_TRACE_EVENT_GENERATOR_HPP
