#include "trace/trace_stats.hpp"

#include <algorithm>

namespace quetzal {
namespace trace {

double
TraceStats::expectedStoredInputs(double captureHz) const
{
    return activityDutyCycle * spanSeconds * captureHz;
}

TraceStats
computeStats(const EventTrace &trace)
{
    TraceStats stats;
    stats.eventCount = trace.size();
    stats.interestingCount = trace.interestingCount();
    if (trace.empty())
        return stats;

    Tick activeTicks = 0;
    Tick maxDuration = 0;
    Tick gapTicks = 0;
    const auto &events = trace.data();
    for (std::size_t i = 0; i < events.size(); ++i) {
        activeTicks += events[i].duration;
        maxDuration = std::max(maxDuration, events[i].duration);
        if (i > 0)
            gapTicks += events[i].start - events[i - 1].end();
    }

    const Tick span = trace.endTime() - events.front().start;
    stats.meanDurationSeconds = ticksToSeconds(activeTicks) /
        static_cast<double>(events.size());
    stats.maxDurationSeconds = ticksToSeconds(maxDuration);
    stats.meanGapSeconds = events.size() > 1 ?
        ticksToSeconds(gapTicks) / static_cast<double>(events.size() - 1) :
        0.0;
    stats.spanSeconds = ticksToSeconds(span);
    stats.activityDutyCycle = span > 0 ?
        static_cast<double>(activeTicks) / static_cast<double>(span) : 0.0;
    return stats;
}

} // namespace trace
} // namespace quetzal
