#include "trace/event_trace.hpp"

#include <algorithm>
#include <istream>
#include <ostream>

#include "util/csv.hpp"
#include "util/logging.hpp"

namespace quetzal {
namespace trace {

EventTrace::EventTrace(std::vector<SensingEvent> events_)
    : events(std::move(events_))
{
    for (std::size_t i = 0; i < events.size(); ++i) {
        if (events[i].duration <= 0)
            util::panic("EventTrace: event duration must be positive");
        if (i > 0 && events[i].start < events[i - 1].end())
            util::panic("EventTrace: events overlap or are unsorted");
    }
}

const SensingEvent &
EventTrace::at(std::size_t index) const
{
    if (index >= events.size())
        util::panic(util::msg("EventTrace index out of range: ", index));
    return events[index];
}

Tick
EventTrace::endTime() const
{
    return events.empty() ? 0 : events.back().end();
}

std::size_t
EventTrace::interestingCount() const
{
    return static_cast<std::size_t>(
        std::count_if(events.begin(), events.end(),
                      [](const SensingEvent &e) { return e.interesting; }));
}

const SensingEvent *
EventTrace::eventAt(Tick tick) const
{
    // Last event with start <= tick is the only candidate.
    auto it = std::upper_bound(
        events.begin(), events.end(), tick,
        [](Tick t, const SensingEvent &e) { return t < e.start; });
    if (it == events.begin())
        return nullptr;
    const SensingEvent &candidate = *std::prev(it);
    return candidate.activeAt(tick) ? &candidate : nullptr;
}

const SensingEvent *
EventTrace::Cursor::eventAt(Tick tick)
{
    if (trace == nullptr || trace->events.empty())
        return nullptr;
    const auto &events = trace->events;
    if (index >= events.size())
        index = 0;
    if (tick < events[index].start) {
        // Backward query: re-seek from scratch.
        const auto it = std::upper_bound(
            events.begin(), events.end(), tick,
            [](Tick t, const SensingEvent &e) { return t < e.start; });
        if (it == events.begin())
            return nullptr;
        index = static_cast<std::size_t>(
            std::prev(it) - events.begin());
    } else {
        // Forward walk; each event is crossed at most once per pass
        // over the trace, so a monotone query sequence is O(1)
        // amortized.
        while (index + 1 < events.size() &&
               events[index + 1].start <= tick)
            ++index;
    }
    const SensingEvent &candidate = events[index];
    return candidate.activeAt(tick) ? &candidate : nullptr;
}

bool
EventTrace::interestingAt(Tick tick) const
{
    const SensingEvent *event = eventAt(tick);
    return event != nullptr && event->interesting;
}

void
EventTrace::writeCsv(std::ostream &out) const
{
    util::CsvWriter writer(out);
    writer.comment("start_seconds,duration_seconds,interesting");
    for (const auto &event : events) {
        writer.row(std::vector<double>{
            ticksToSeconds(event.start),
            ticksToSeconds(event.duration),
            event.interesting ? 1.0 : 0.0});
    }
}

EventTrace
EventTrace::readCsv(std::istream &in)
{
    std::vector<SensingEvent> events;
    for (const auto &row : util::readCsv(in)) {
        if (row.size() != 3)
            util::fatal("event trace CSV rows must be "
                        "start,duration,interesting");
        SensingEvent event;
        event.start = secondsToTicks(util::parseDouble(row[0]));
        event.duration = secondsToTicks(util::parseDouble(row[1]));
        event.interesting = util::parseInt(row[2]) != 0;
        events.push_back(event);
    }
    return EventTrace(std::move(events));
}

} // namespace trace
} // namespace quetzal
