/**
 * @file
 * Container and queries over a sequence of sensing events.
 */

#ifndef QUETZAL_TRACE_EVENT_TRACE_HPP
#define QUETZAL_TRACE_EVENT_TRACE_HPP

#include <cstddef>
#include <iosfwd>
#include <vector>

#include "trace/event.hpp"
#include "util/types.hpp"

namespace quetzal {
namespace trace {

/**
 * An ordered, non-overlapping sequence of sensing events. Supports
 * the point queries the capture pipeline issues once per capture
 * period, amortized O(1) via a monotone cursor (captures scan the
 * trace in time order).
 */
class EventTrace
{
  public:
    /**
     * Amortized-O(1) point queries for monotone (mostly forward)
     * query sequences: remembers the event the last query landed
     * near and walks forward from there; a backward query re-seeks
     * via binary search. Answers are identical to eventAt() for
     * every input. The trace must outlive the cursor and must not
     * be mutated while the cursor is in use.
     */
    class Cursor
    {
      public:
        Cursor() = default;

        explicit Cursor(const EventTrace &trace) : trace(&trace) {}

        /** Same answer as trace.eventAt(tick). */
        const SensingEvent *eventAt(Tick tick);

        /** Forget the remembered position (next query re-seeks). */
        void reset() { index = 0; }

        /** Remembered event index, for external snapshots. */
        std::size_t position() const { return index; }

        /**
         * Restore a position previously read via position() against
         * the same trace. Purely a performance memo — answers are
         * identical for any remembered index — but restoring it keeps
         * a resumed run's forward walk amortized O(1) from the first
         * query.
         */
        void restore(std::size_t saved) { index = saved; }

      private:
        const EventTrace *trace = nullptr;
        /** Index of the last event with start <= the query tick
         *  (0 also covers ticks before the first event's start). */
        std::size_t index = 0;
    };

    EventTrace() = default;

    /**
     * Construct from events; panics if events overlap or are not
     * sorted by start time.
     */
    explicit EventTrace(std::vector<SensingEvent> events);

    /** Number of events. */
    std::size_t size() const { return events.size(); }

    bool empty() const { return events.empty(); }

    /** Read-only event access. */
    const std::vector<SensingEvent> &data() const { return events; }

    /** Event by index. */
    const SensingEvent &at(std::size_t index) const;

    /** First tick after the final event ends (0 when empty). */
    Tick endTime() const;

    /** Number of interesting events. */
    std::size_t interestingCount() const;

    /**
     * Query the event active at the given tick, or nullptr if none.
     * O(log n).
     */
    const SensingEvent *eventAt(Tick tick) const;

    /** A cursor over this trace (see Cursor). */
    Cursor cursor() const { return Cursor(*this); }

    /** True when any event is active at the given tick. */
    bool activeAt(Tick tick) const { return eventAt(tick) != nullptr; }

    /**
     * True when an interesting event is active at the given tick.
     */
    bool interestingAt(Tick tick) const;

    /** Serialize as CSV rows "start_s,duration_s,interesting". */
    void writeCsv(std::ostream &out) const;

    /** Parse from CSV (see writeCsv). Calls fatal() on bad input. */
    static EventTrace readCsv(std::istream &in);

  private:
    std::vector<SensingEvent> events;
};

} // namespace trace
} // namespace quetzal

#endif // QUETZAL_TRACE_EVENT_TRACE_HPP
