/**
 * @file
 * Container and queries over a sequence of sensing events.
 */

#ifndef QUETZAL_TRACE_EVENT_TRACE_HPP
#define QUETZAL_TRACE_EVENT_TRACE_HPP

#include <cstddef>
#include <iosfwd>
#include <vector>

#include "trace/event.hpp"
#include "util/types.hpp"

namespace quetzal {
namespace trace {

/**
 * An ordered, non-overlapping sequence of sensing events. Supports
 * the point queries the capture pipeline issues once per capture
 * period, amortized O(1) via a monotone cursor (captures scan the
 * trace in time order).
 */
class EventTrace
{
  public:
    EventTrace() = default;

    /**
     * Construct from events; panics if events overlap or are not
     * sorted by start time.
     */
    explicit EventTrace(std::vector<SensingEvent> events);

    /** Number of events. */
    std::size_t size() const { return events.size(); }

    bool empty() const { return events.empty(); }

    /** Read-only event access. */
    const std::vector<SensingEvent> &data() const { return events; }

    /** Event by index. */
    const SensingEvent &at(std::size_t index) const;

    /** First tick after the final event ends (0 when empty). */
    Tick endTime() const;

    /** Number of interesting events. */
    std::size_t interestingCount() const;

    /**
     * Query the event active at the given tick, or nullptr if none.
     * O(log n).
     */
    const SensingEvent *eventAt(Tick tick) const;

    /** True when any event is active at the given tick. */
    bool activeAt(Tick tick) const { return eventAt(tick) != nullptr; }

    /**
     * True when an interesting event is active at the given tick.
     */
    bool interestingAt(Tick tick) const;

    /** Serialize as CSV rows "start_s,duration_s,interesting". */
    void writeCsv(std::ostream &out) const;

    /** Parse from CSV (see writeCsv). Calls fatal() on bad input. */
    static EventTrace readCsv(std::istream &in);

  private:
    std::vector<SensingEvent> events;
};

} // namespace trace
} // namespace quetzal

#endif // QUETZAL_TRACE_EVENT_TRACE_HPP
