/**
 * @file
 * Summary statistics over event traces, used by tests to validate
 * generator behaviour and by benches to report workload properties.
 */

#ifndef QUETZAL_TRACE_TRACE_STATS_HPP
#define QUETZAL_TRACE_TRACE_STATS_HPP

#include <cstddef>

#include "trace/event_trace.hpp"
#include "util/types.hpp"

namespace quetzal {
namespace trace {

/** Aggregate description of an event trace. */
struct TraceStats
{
    std::size_t eventCount = 0;
    std::size_t interestingCount = 0;
    double meanDurationSeconds = 0.0;
    double maxDurationSeconds = 0.0;
    double meanGapSeconds = 0.0;
    double activityDutyCycle = 0.0; ///< active time / total span
    double spanSeconds = 0.0;       ///< first start to last end

    /**
     * Expected number of "different" captures: active seconds times
     * the capture rate (1 FPS by default).
     */
    double expectedStoredInputs(double captureHz = 1.0) const;
};

/** Compute statistics over a trace. */
TraceStats computeStats(const EventTrace &trace);

} // namespace trace
} // namespace quetzal

#endif // QUETZAL_TRACE_TRACE_STATS_HPP
