#include "trace/event_generator.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"
#include "util/random.hpp"

namespace quetzal {
namespace trace {

std::string
environmentName(EnvironmentPreset preset)
{
    switch (preset) {
      case EnvironmentPreset::MoreCrowded: return "MoreCrowded";
      case EnvironmentPreset::Crowded: return "Crowded";
      case EnvironmentPreset::LessCrowded: return "LessCrowded";
      case EnvironmentPreset::Msp430Short: return "Msp430Short";
    }
    util::panic("unknown environment preset");
}

EventGeneratorConfig
EventGeneratorConfig::forPreset(EnvironmentPreset preset,
                                std::size_t eventCount, std::uint64_t seed)
{
    EventGeneratorConfig cfg;
    cfg.eventCount = eventCount;
    cfg.seed = seed;
    switch (preset) {
      case EnvironmentPreset::MoreCrowded:
        cfg.maxInterestingSeconds = 600.0;
        cfg.meanInterarrivalSeconds = 35.0;
        break;
      case EnvironmentPreset::Crowded:
        cfg.maxInterestingSeconds = 60.0;
        cfg.meanInterarrivalSeconds = 25.0;
        break;
      case EnvironmentPreset::LessCrowded:
        // Fewer people, but the street stays busy: long uninteresting
        // activity keeps buffer pressure high while interesting
        // events are rare and short.
        cfg.maxInterestingSeconds = 20.0;
        cfg.meanInterarrivalSeconds = 40.0;
        cfg.maxUninterestingSeconds = 45.0;
        cfg.interestingProbability = 0.35;
        break;
      case EnvironmentPreset::Msp430Short:
        // Dense enough that a seconds-per-inference 16-bit MCU
        // falls behind at full quality (paper Fig. 13 regime).
        cfg.maxInterestingSeconds = 10.0;
        cfg.meanInterarrivalSeconds = 12.0;
        cfg.maxUninterestingSeconds = 60.0;
        cfg.interestingProbability = 0.4;
        break;
    }
    return cfg;
}

EventGenerator::EventGenerator(const EventGeneratorConfig &config)
    : cfg(config)
{
    if (cfg.eventCount == 0)
        util::fatal("event count must be positive");
    if (cfg.meanInterarrivalSeconds <= 0.0)
        util::fatal("mean interarrival must be positive");
    if (cfg.minDurationSeconds <= 0.0 ||
        cfg.minDurationSeconds > cfg.maxInterestingSeconds ||
        cfg.minDurationSeconds > cfg.maxUninterestingSeconds) {
        util::fatal("event duration bounds invalid");
    }
    if (cfg.interestingProbability < 0.0 ||
        cfg.interestingProbability > 1.0) {
        util::fatal("interesting probability out of [0,1]");
    }
}

EventTrace
EventGenerator::generate() const
{
    util::Rng rng(cfg.seed);
    std::vector<SensingEvent> events;
    events.reserve(cfg.eventCount);

    Tick cursor = 0;
    for (std::size_t i = 0; i < cfg.eventCount; ++i) {
        const double gap = rng.exponential(cfg.meanInterarrivalSeconds);
        cursor += std::max<Tick>(secondsToTicks(gap), 1);

        SensingEvent event;
        event.start = cursor;
        event.interesting = rng.bernoulli(cfg.interestingProbability);

        const double cap = event.interesting ?
            cfg.maxInterestingSeconds : cfg.maxUninterestingSeconds;
        // Log-normal about a median set to a fraction of the cap, so
        // raising the cap (more crowded environment) lengthens typical
        // events the way the paper's presets do.
        const double median = std::max(cfg.minDurationSeconds, cap / 4.0);
        double duration = rng.lognormal(std::log(median),
                                        cfg.durationSigma);
        duration = std::clamp(duration, cfg.minDurationSeconds, cap);

        event.duration = std::max<Tick>(secondsToTicks(duration), 1);
        events.push_back(event);
        cursor = event.end();
    }

    return EventTrace(std::move(events));
}

} // namespace trace
} // namespace quetzal
