/**
 * @file
 * Sensing-event representation.
 *
 * The paper models the environment as a sequence of events with
 * durations and interarrival times drawn from a surveillance dataset
 * (section 6.4); an event is either 'interesting' (contains what the
 * application looks for, e.g. a person) or 'uninteresting' (activity
 * that changes pixels but carries nothing reportable, e.g. a passing
 * car). Captures that overlap an event are "different" from the
 * previous frame and therefore enter the input buffer.
 */

#ifndef QUETZAL_TRACE_EVENT_HPP
#define QUETZAL_TRACE_EVENT_HPP

#include "util/types.hpp"

namespace quetzal {
namespace trace {

/** One environmental activity interval. */
struct SensingEvent
{
    Tick start = 0;       ///< event onset
    Tick duration = 0;    ///< activity length (> 0)
    bool interesting = false; ///< carries reportable content

    /** First tick after the event ends. */
    Tick end() const { return start + duration; }

    /** True when the event is active at the given tick. */
    bool
    activeAt(Tick tick) const
    {
        return tick >= start && tick < end();
    }
};

} // namespace trace
} // namespace quetzal

#endif // QUETZAL_TRACE_EVENT_HPP
