/**
 * @file
 * Unit tests of the fleet's per-device state block, the integer
 * counter algebra, and the coordinator's directive protocol — the
 * pieces whose exactness the determinism suite builds on.
 */

#include <gtest/gtest.h>

#include "fleet/coordinator.hpp"
#include "fleet/fleet.hpp"
#include "fleet/state.hpp"

namespace {

using namespace quetzal;

TEST(CohortBlock, InitAllocatesDeploymentState)
{
    fleet::CohortBlock block;
    block.init(/*first=*/120, /*count=*/7, /*fullCharge=*/0.05);

    EXPECT_EQ(block.firstDevice, 120u);
    EXPECT_EQ(block.size(), 7u);
    for (std::size_t i = 0; i < block.size(); ++i) {
        EXPECT_DOUBLE_EQ(block.charge[i], 0.05);
        EXPECT_EQ(block.taskTicksLeft[i], 0);
        EXPECT_EQ(block.phaseTicksLeft[i], 0);
        EXPECT_EQ(block.cursor[i], 0u);
        EXPECT_EQ(block.phase[i], 0);
        EXPECT_EQ(block.occupancy[i], 0);
        EXPECT_EQ(block.level[i], 0);
        EXPECT_EQ(block.scratch[i], 0);
    }
}

TEST(CohortBlock, BytesIsTwentyNinePerDevice)
{
    fleet::CohortBlock block;
    block.init(0, 1000, 0.1);
    EXPECT_EQ(block.bytes(), 29u * 1000u);

    fleet::ShardState shard;
    shard.blocks.push_back(block);
    shard.blocks.push_back(block);
    EXPECT_EQ(shard.bytes(), 2u * 29u * 1000u);
}

TEST(CohortCounters, AddIsFieldWiseSum)
{
    fleet::CohortCounters a;
    a.captures = 10;
    a.missedCaptures = 3;
    a.storedInputs = 7;
    a.dropsInteresting = 1;
    a.dropsUninteresting = 2;
    a.jobsCompleted = 6;
    a.degradedJobs = 4;
    a.powerFailures = 5;
    a.checkpointSaves = 5;
    a.rechargeTicks = 900;
    a.activeTicks = 800;
    a.chargeNanojoules = 123456789;
    a.wastedNanojoules = 1000;
    a.occupancySum = 12;
    a.devicesOff = 2;

    fleet::CohortCounters b = a;
    b.add(a);

    EXPECT_EQ(b.captures, 20u);
    EXPECT_EQ(b.missedCaptures, 6u);
    EXPECT_EQ(b.storedInputs, 14u);
    EXPECT_EQ(b.dropsInteresting, 2u);
    EXPECT_EQ(b.dropsUninteresting, 4u);
    EXPECT_EQ(b.jobsCompleted, 12u);
    EXPECT_EQ(b.degradedJobs, 8u);
    EXPECT_EQ(b.powerFailures, 10u);
    EXPECT_EQ(b.checkpointSaves, 10u);
    EXPECT_EQ(b.rechargeTicks, 1800u);
    EXPECT_EQ(b.activeTicks, 1600u);
    EXPECT_EQ(b.chargeNanojoules, 246913578u);
    EXPECT_EQ(b.wastedNanojoules, 2000u);
    EXPECT_EQ(b.occupancySum, 24u);
    EXPECT_EQ(b.devicesOff, 4u);
}

TEST(Directive, ExecTicksHalvesPerLevelAndFloorsAtOne)
{
    EXPECT_EQ(fleet::execTicks(90000, 0), 90000);
    EXPECT_EQ(fleet::execTicks(90000, 1), 45000);
    EXPECT_EQ(fleet::execTicks(90000, 2), 22500);
    EXPECT_EQ(fleet::execTicks(1, 2), 1);
}

TEST(Directive, AssignLevelAppliesPressureThresholds)
{
    fleet::Directive directive;
    directive.baseLevel = 0;
    directive.pressureLevel = 2;
    directive.occupancyHigh = 3;
    directive.chargeLowNano = 1000;

    // Healthy device: base level.
    EXPECT_EQ(fleet::assignLevel(directive, 5000, 1), 0);
    // Occupancy at the threshold: pressure.
    EXPECT_EQ(fleet::assignLevel(directive, 5000, 3), 2);
    // Charge at the floor: pressure.
    EXPECT_EQ(fleet::assignLevel(directive, 1000, 0), 2);
    // Default directive never leaves base quality.
    EXPECT_EQ(fleet::assignLevel(fleet::Directive{}, 0, 100), 0);
}

/** The fleet_day stress cohort: keep-up needs one degrade level. */
fleet::FleetConfig
stressConfig(const char *policy)
{
    fleet::FleetConfig config;
    fleet::CohortConfig cohort;
    cohort.name = "c0";
    cohort.policy = policy;
    cohort.devices = 100;
    cohort.harvesterCells = 1;
    cohort.capturePeriod = 60 * kTicksPerSecond;
    cohort.bufferCapacity = 4;
    cohort.taskTicks = 90 * kTicksPerSecond;
    config.cohorts.push_back(cohort);
    return config;
}

TEST(FleetCoordinator, UnknownPolicyFailsAtConstruction)
{
    const fleet::FleetConfig config = stressConfig("no-such-policy");
    EXPECT_DEATH(fleet::FleetCoordinator coordinator(config),
                 "no-such-policy");
}

TEST(FleetCoordinator, GreedyNeverDegrades)
{
    const fleet::FleetConfig config = stressConfig("greedy-fcfs");
    fleet::FleetCoordinator coordinator(config);

    fleet::CohortCounters slab;
    slab.dropsInteresting = 500;
    slab.occupancySum = 400; // mean occupancy 4 of capacity 4
    coordinator.consumeSlab({slab});

    const fleet::Directive &directive = coordinator.directive(0);
    EXPECT_EQ(directive.baseLevel, 0);
    EXPECT_EQ(directive.pressureLevel, 0);
    EXPECT_EQ(fleet::assignLevel(directive, 0, 4), 0);
}

TEST(FleetCoordinator, SjfIboEscalatesOnDropsAndRelaxesWhenQuiet)
{
    const fleet::FleetConfig config = stressConfig("sjf-ibo");
    fleet::FleetCoordinator coordinator(config);

    // Drops observed: escalate to the keep-up level (90 s jobs vs
    // 60 s captures -> level 1) with pressure one above.
    fleet::CohortCounters drops;
    drops.dropsInteresting = 10;
    coordinator.consumeSlab({drops});
    EXPECT_EQ(coordinator.directive(0).baseLevel, 1);
    EXPECT_EQ(coordinator.directive(0).pressureLevel, 2);
    EXPECT_EQ(coordinator.directive(0).occupancyHigh, 3u);

    // Two quiet slabs: relax one level per slab, back to full quality.
    coordinator.consumeSlab({fleet::CohortCounters{}});
    EXPECT_EQ(coordinator.directive(0).baseLevel, 0);
    coordinator.consumeSlab({fleet::CohortCounters{}});
    EXPECT_EQ(coordinator.directive(0).baseLevel, 0);
}

TEST(FleetCoordinator, ZygardeDrainsBacklogByDeadline)
{
    const fleet::FleetConfig config = stressConfig("zygarde");
    fleet::FleetCoordinator coordinator(config);

    // Empty backlog: (0+1) * execTicks(90 s, 1) = 45 s <= 60 s, so
    // level 1 is the lowest that clears before the next capture.
    coordinator.consumeSlab({fleet::CohortCounters{}});
    EXPECT_EQ(coordinator.directive(0).baseLevel, 1);
    EXPECT_EQ(coordinator.directive(0).pressureLevel,
              fleet::kMaxDegradeLevel);
    EXPECT_EQ(coordinator.directive(0).occupancyHigh, 3u);

    // Mean occupancy 2: (2+1) * 22.5 s = 67.5 s > 60 s even at max
    // level, so the base clamps to kMaxDegradeLevel.
    fleet::CohortCounters backlog;
    backlog.occupancySum = 200;
    coordinator.consumeSlab({backlog});
    EXPECT_EQ(coordinator.directive(0).baseLevel,
              fleet::kMaxDegradeLevel);
}

TEST(FleetCoordinator, DelgadoShedsWhenMeanChargeIsLow)
{
    const fleet::FleetConfig config = stressConfig("delgado-famaey");
    fleet::FleetCoordinator coordinator(config);

    // Healthy fleet: full quality, but a per-device low-charge
    // pressure threshold at 30 % of usable capacity.
    fleet::CohortCounters healthy;
    healthy.chargeNanojoules = 100ull * 100000000ull; // 0.1 J mean
    coordinator.consumeSlab({healthy});
    EXPECT_EQ(coordinator.directive(0).baseLevel, 0);
    EXPECT_GT(coordinator.directive(0).chargeLowNano, 0u);

    // Starved fleet (mean charge ~0): shed at the base level too.
    coordinator.consumeSlab({fleet::CohortCounters{}});
    EXPECT_GE(coordinator.directive(0).baseLevel, 1);
}

} // namespace
