/**
 * @file
 * The fleet determinism contract (DESIGN.md section 15): a seeded
 * 10k-device fleet produces byte-identical rollup text and telemetry
 * streams for every --jobs value and every shard count, and the
 * per-shard integer totals sum exactly to the fleet rollup — the
 * property that makes "how the fleet was partitioned" unobservable
 * in every output.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "fleet/fleet.hpp"
#include "obs/trace_io.hpp"
#include "obs/trace_sink.hpp"

namespace {

using namespace quetzal;

/** Four policy cohorts x 2500 devices on the stress workload. */
fleet::FleetConfig
tenKConfig(unsigned shards)
{
    static const char *const kPolicies[] = {
        "sjf-ibo", "greedy-fcfs", "zygarde", "delgado-famaey"};

    fleet::FleetConfig config;
    config.shards = shards;
    config.slabTicks = 600 * kTicksPerSecond;
    config.horizonTicks = 7200 * kTicksPerSecond;
    config.rollupTicks = 3600 * kTicksPerSecond;
    for (const char *policy : kPolicies) {
        fleet::CohortConfig cohort;
        cohort.name = policy;
        cohort.policy = policy;
        cohort.devices = 2500;
        cohort.seed = 7;
        cohort.harvesterCells = 1;
        cohort.capturePeriod = 60 * kTicksPerSecond;
        cohort.bufferCapacity = 4;
        cohort.taskTicks = 90 * kTicksPerSecond;
        config.cohorts.push_back(cohort);
    }
    return config;
}

struct Observed
{
    std::string rollupText;
    std::string traceText;
    fleet::FleetResult result;
};

Observed
runOnce(unsigned shards, unsigned jobs)
{
    Observed observed;
    obs::VectorSink sink;
    std::ostringstream text;

    fleet::FleetOptions options;
    options.jobs = jobs;
    options.sink = &sink;
    options.out = &text;
    observed.result = fleet::runFleet(tenKConfig(shards), options);
    observed.rollupText = text.str();

    std::ostringstream trace;
    obs::writeJsonl(trace, sink.events(), 0);
    observed.traceText = trace.str();
    return observed;
}

void
expectCountersEqual(const fleet::CohortCounters &a,
                    const fleet::CohortCounters &b)
{
    EXPECT_EQ(a.captures, b.captures);
    EXPECT_EQ(a.missedCaptures, b.missedCaptures);
    EXPECT_EQ(a.storedInputs, b.storedInputs);
    EXPECT_EQ(a.dropsInteresting, b.dropsInteresting);
    EXPECT_EQ(a.dropsUninteresting, b.dropsUninteresting);
    EXPECT_EQ(a.jobsCompleted, b.jobsCompleted);
    EXPECT_EQ(a.degradedJobs, b.degradedJobs);
    EXPECT_EQ(a.powerFailures, b.powerFailures);
    EXPECT_EQ(a.checkpointSaves, b.checkpointSaves);
    EXPECT_EQ(a.rechargeTicks, b.rechargeTicks);
    EXPECT_EQ(a.activeTicks, b.activeTicks);
    EXPECT_EQ(a.chargeNanojoules, b.chargeNanojoules);
    EXPECT_EQ(a.wastedNanojoules, b.wastedNanojoules);
    EXPECT_EQ(a.occupancySum, b.occupancySum);
    EXPECT_EQ(a.devicesOff, b.devicesOff);
}

TEST(FleetDeterminism, RollupAndTraceAreByteIdenticalAcrossJobs)
{
    const Observed serial = runOnce(/*shards=*/4, /*jobs=*/1);
    const Observed parallel = runOnce(/*shards=*/4, /*jobs=*/4);

    EXPECT_FALSE(serial.rollupText.empty());
    EXPECT_FALSE(serial.traceText.empty());
    EXPECT_EQ(serial.rollupText, parallel.rollupText);
    EXPECT_EQ(serial.traceText, parallel.traceText);
    expectCountersEqual(serial.result.fleetTotals,
                        parallel.result.fleetTotals);
}

TEST(FleetDeterminism, RollupAndTraceAreByteIdenticalAcrossShards)
{
    const Observed one = runOnce(/*shards=*/1, /*jobs=*/4);
    const Observed four = runOnce(/*shards=*/4, /*jobs=*/4);
    const Observed sixteen = runOnce(/*shards=*/16, /*jobs=*/4);

    EXPECT_EQ(one.rollupText, four.rollupText);
    EXPECT_EQ(four.rollupText, sixteen.rollupText);
    EXPECT_EQ(one.traceText, four.traceText);
    EXPECT_EQ(four.traceText, sixteen.traceText);
    expectCountersEqual(one.result.fleetTotals,
                        sixteen.result.fleetTotals);
}

TEST(FleetDeterminism, ShardTotalsSumExactlyToFleetRollup)
{
    const Observed observed = runOnce(/*shards=*/16, /*jobs=*/4);
    const fleet::FleetResult &result = observed.result;

    ASSERT_EQ(result.shardTotals.size(), 16u);
    fleet::CohortCounters sum;
    for (const fleet::CohortCounters &shard : result.shardTotals)
        sum.add(shard);
    expectCountersEqual(sum, result.fleetTotals);

    // Cohort totals are the same partition along the other axis.
    fleet::CohortCounters cohortSum;
    for (const fleet::CohortResult &cohort : result.cohorts)
        cohortSum.add(cohort.totals);
    expectCountersEqual(cohortSum, result.fleetTotals);
}

TEST(FleetDeterminism, StateStaysCompact)
{
    const Observed observed = runOnce(/*shards=*/16, /*jobs=*/2);
    EXPECT_EQ(observed.result.devices, 10000u);
    EXPECT_EQ(observed.result.stateBytes, 29u * 10000u);

    // The run actually exercised the stress regime: jobs completed,
    // captures missed while off, and at least one cohort dropped
    // inputs at a full buffer.
    EXPECT_GT(observed.result.fleetTotals.jobsCompleted, 0u);
    EXPECT_GT(observed.result.fleetTotals.missedCaptures, 0u);
    EXPECT_GT(observed.result.fleetTotals.dropsInteresting, 0u);
    EXPECT_GT(observed.result.fleetTotals.degradedJobs, 0u);
}

} // namespace
