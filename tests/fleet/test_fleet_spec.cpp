/**
 * @file
 * The scenario front door of the fleet engine: "fleet" block parsing
 * and validation (every problem lands as a SpecError with its JSON
 * field path — never a silent ignore), and buildFleetConfig's
 * lowering of populations + overrides onto fleet cohorts.
 */

#include <gtest/gtest.h>

#include <string>

#include "scenario/engine.hpp"
#include "scenario/spec.hpp"
#include "sim/runner.hpp"

namespace {

using namespace quetzal;
using scenario::parseScenarioText;

bool
hasError(const scenario::Expected<scenario::ScenarioSpec> &result,
         const std::string &pathPart, const std::string &messagePart)
{
    for (const scenario::SpecError &error : result.errors) {
        if (error.path.find(pathPart) != std::string::npos &&
            error.message.find(messagePart) != std::string::npos)
            return true;
    }
    return false;
}

std::string
describeErrors(const scenario::Expected<scenario::ScenarioSpec> &result)
{
    std::string all;
    for (const scenario::SpecError &error : result.errors)
        all += error.describe() + "\n";
    return all;
}

const char *const kValidFleet = R"({
  "schema_version": 1,
  "name": "mini-fleet",
  "defaults": {"seed": 9, "cells": 2, "buffer": 5,
               "capture_period_ms": 30000},
  "populations": [
    {"name": "a", "policy": "zygarde"},
    {"name": "b", "policy": "greedy-fcfs", "device": "msp430"}
  ],
  "fleet": {
    "shards": 8,
    "slab_s": 300,
    "horizon_s": 3600,
    "rollup_s": 900,
    "solar_sample_s": 60,
    "cohorts": [
      {"population": "a", "devices": 40, "task_ms": 45000,
       "task_mw": 6.5},
      {"population": "b", "name": "b-lite", "devices": 10}
    ]
  }
})";

TEST(FleetSpec, ValidBlockParsesEveryField)
{
    const auto result = parseScenarioText(kValidFleet);
    ASSERT_TRUE(result.ok()) << describeErrors(result);

    const scenario::ScenarioSpec &spec = *result.value;
    ASSERT_TRUE(spec.fleet.has_value());
    EXPECT_EQ(spec.fleet->shards, 8u);
    EXPECT_EQ(spec.fleet->slabSeconds, 300u);
    EXPECT_EQ(spec.fleet->horizonSeconds, 3600u);
    EXPECT_EQ(spec.fleet->rollupSeconds, 900u);
    EXPECT_DOUBLE_EQ(spec.fleet->solarSampleSeconds, 60.0);
    ASSERT_EQ(spec.fleet->cohorts.size(), 2u);
    EXPECT_EQ(spec.fleet->cohorts[0].population, "a");
    EXPECT_EQ(spec.fleet->cohorts[0].devices, 40u);
    EXPECT_EQ(spec.fleet->cohorts[0].taskMs, 45000u);
    EXPECT_DOUBLE_EQ(spec.fleet->cohorts[0].taskMw, 6.5);
    EXPECT_EQ(spec.fleet->cohorts[1].name, "b-lite");
}

TEST(FleetSpec, BuildFleetConfigLowersDefaultsAndOverrides)
{
    const auto result = parseScenarioText(kValidFleet);
    ASSERT_TRUE(result.ok()) << describeErrors(result);

    const fleet::FleetConfig config =
        scenario::buildFleetConfig(*result.value);
    EXPECT_EQ(config.shards, 8u);
    EXPECT_EQ(config.slabTicks, Tick{300} * kTicksPerSecond);
    EXPECT_EQ(config.horizonTicks, Tick{3600} * kTicksPerSecond);
    EXPECT_EQ(config.rollupTicks, Tick{900} * kTicksPerSecond);
    EXPECT_DOUBLE_EQ(config.solarSampleSeconds, 60.0);

    ASSERT_EQ(config.cohorts.size(), 2u);
    const fleet::CohortConfig &a = config.cohorts[0];
    EXPECT_EQ(a.name, "a"); // display name defaults to the population
    EXPECT_EQ(a.policy, "zygarde");
    EXPECT_EQ(a.devices, 40u);
    EXPECT_EQ(a.seed, 9u);
    EXPECT_EQ(a.harvesterCells, 2);
    EXPECT_EQ(a.bufferCapacity, 5u);
    EXPECT_EQ(a.capturePeriod, Tick{30000}); // ticks are milliseconds
    EXPECT_EQ(a.taskTicks, Tick{45000});
    EXPECT_DOUBLE_EQ(a.taskPower, 6.5e-3);

    const fleet::CohortConfig &b = config.cohorts[1];
    EXPECT_EQ(b.name, "b-lite");
    EXPECT_EQ(b.policy, "greedy-fcfs");
    EXPECT_EQ(b.device, app::DeviceKind::Msp430);
    // Cohort keys the spec omitted keep their fleet-scale defaults.
    EXPECT_EQ(b.taskTicks, Tick{3} * kTicksPerSecond);
    EXPECT_DOUBLE_EQ(b.taskPower, 12e-3);
}

TEST(FleetSpec, FleetScaleDefaultsSurviveWhenSpecIsSilent)
{
    // No capture_period_ms anywhere: the cohort must keep the fleet
    // default (60 s), not inherit ExperimentConfig's 1 s default.
    const auto result = parseScenarioText(R"({
      "name": "quiet",
      "populations": [{"name": "a"}],
      "fleet": {"cohorts": [{"population": "a", "devices": 3}]}
    })");
    ASSERT_TRUE(result.ok()) << describeErrors(result);

    const fleet::FleetConfig config =
        scenario::buildFleetConfig(*result.value);
    ASSERT_EQ(config.cohorts.size(), 1u);
    EXPECT_EQ(config.cohorts[0].capturePeriod,
              Tick{60} * kTicksPerSecond);
    EXPECT_EQ(config.cohorts[0].bufferCapacity, 8u);
    EXPECT_EQ(config.cohorts[0].seed, 42u);
}

TEST(FleetSpec, SweepAxesCannotCombineWithFleet)
{
    const auto result = parseScenarioText(R"({
      "name": "bad",
      "populations": [{"name": "a"}],
      "sweep": {"axes": [{"field": "buffer", "values": [4, 8]}]},
      "fleet": {"cohorts": [{"population": "a", "devices": 1}]}
    })");
    EXPECT_FALSE(result.ok());
    EXPECT_TRUE(hasError(result, "sweep", "fleet"))
        << describeErrors(result);
}

TEST(FleetSpec, EngineOverridesAreRejectedWithTheirJsonPath)
{
    // The scheduled-PR bugfix: an "engine" override combined with a
    // "fleet" block used to be silently ignored; it must be a
    // diagnostic anchored to the override's own JSON path.
    const auto inDefaults = parseScenarioText(R"({
      "name": "bad",
      "defaults": {"engine": "tick"},
      "populations": [{"name": "a"}],
      "fleet": {"cohorts": [{"population": "a", "devices": 1}]}
    })");
    EXPECT_FALSE(inDefaults.ok());
    EXPECT_TRUE(hasError(inDefaults, "defaults.engine",
                         "do not apply to the fleet engine"))
        << describeErrors(inDefaults);

    const auto inPopulation = parseScenarioText(R"({
      "name": "bad",
      "populations": [{"name": "a", "engine": "event"}],
      "fleet": {"cohorts": [{"population": "a", "devices": 1}]}
    })");
    EXPECT_FALSE(inPopulation.ok());
    EXPECT_TRUE(hasError(inPopulation, "populations[0].engine",
                         "do not apply to the fleet engine"))
        << describeErrors(inPopulation);
}

TEST(FleetSpec, RunMatrixOutputsAreRejectedWithFleet)
{
    const auto result = parseScenarioText(R"({
      "name": "bad",
      "populations": [{"name": "a"}],
      "output": {"csv": "runs.csv", "league": true},
      "report": {"banner": "x", "table": ["a"]},
      "fleet": {"cohorts": [{"population": "a", "devices": 1}]}
    })");
    EXPECT_FALSE(result.ok());
    EXPECT_TRUE(hasError(result, "output.csv", "fleet"))
        << describeErrors(result);
    EXPECT_TRUE(hasError(result, "output.league", "fleet"))
        << describeErrors(result);
    EXPECT_TRUE(hasError(result, "report", "fleet"))
        << describeErrors(result);
}

TEST(FleetSpec, CohortProblemsCarryTheirJsonPaths)
{
    const auto result = parseScenarioText(R"({
      "name": "bad",
      "populations": [{"name": "a"}],
      "fleet": {
        "shards": 0,
        "rollup_s": 700,
        "cohorts": [
          {"population": "ghost", "devices": 1},
          {"population": "a", "devices": 0, "task_mw": 0}
        ]
      }
    })");
    EXPECT_FALSE(result.ok());
    EXPECT_TRUE(hasError(result, "fleet.shards", ""))
        << describeErrors(result);
    EXPECT_TRUE(hasError(result, "fleet.rollup_s", "multiple"))
        << describeErrors(result);
    EXPECT_TRUE(hasError(result, "fleet.cohorts[0].population",
                         "ghost"))
        << describeErrors(result);
    EXPECT_TRUE(hasError(result, "fleet.cohorts[1].devices", ""))
        << describeErrors(result);
    EXPECT_TRUE(hasError(result, "fleet.cohorts[1].task_mw", ""))
        << describeErrors(result);
}

TEST(FleetSpec, DispatcherRoutesScenarioAndFleetKinds)
{
    sim::RunDispatcher dispatcher;
    EXPECT_FALSE(dispatcher.hasHandler(sim::RunKind::Scenario));
    EXPECT_FALSE(dispatcher.hasHandler(sim::RunKind::Fleet));

    scenario::installRunHandlers(dispatcher);
    ASSERT_TRUE(dispatcher.hasHandler(sim::RunKind::Scenario));
    ASSERT_TRUE(dispatcher.hasHandler(sim::RunKind::Fleet));

    // Validate-only through the front door: the fleet scenario is
    // accepted by both kinds, and a matrix-only scenario is rejected
    // by the Fleet kind (it has no "fleet" block).
    sim::RunRequest request;
    request.kind = sim::RunKind::Scenario;
    request.scenarioPath =
        std::string(QUETZAL_SCENARIO_DIR) + "/fleet_day.json";
    request.validateOnly = true;
    EXPECT_EQ(dispatcher.run(request).exitCode, 0);

    request.kind = sim::RunKind::Fleet;
    EXPECT_EQ(dispatcher.run(request).exitCode, 0);

    request.scenarioPath =
        std::string(QUETZAL_SCENARIO_DIR) + "/fig09.json";
    EXPECT_EQ(dispatcher.run(request).exitCode, 1);
    request.kind = sim::RunKind::Scenario;
    EXPECT_EQ(dispatcher.run(request).exitCode, 0);
}

} // namespace
