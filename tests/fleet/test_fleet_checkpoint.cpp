/**
 * @file
 * Fleet barrier-snapshot contract (DESIGN.md section 17): saving is
 * byte-inert, a snapshot taken at any coordinator barrier resumes
 * into exactly the straight run — same rollup text, same event
 * stream, same integer totals — for any --jobs value and any shard
 * count (including a shard count different from the one the snapshot
 * was taken under), and a corrupted blob is rejected with a named
 * diagnostic instead of silent divergence.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "fleet/checkpoint.hpp"
#include "fleet/fleet.hpp"
#include "obs/trace_io.hpp"
#include "obs/trace_sink.hpp"

namespace {

using namespace quetzal;

/** One collected barrier snapshot: the blob and its barrier tick. */
using Snapshot = std::pair<std::string, Tick>;

/** Two policy cohorts x 120 devices; 6 barriers over a short hour. */
fleet::FleetConfig
smallConfig(unsigned shards)
{
    static const char *const kPolicies[] = {"sjf-ibo", "greedy-fcfs"};

    fleet::FleetConfig config;
    config.shards = shards;
    config.slabTicks = 600 * kTicksPerSecond;
    config.horizonTicks = 3600 * kTicksPerSecond;
    config.rollupTicks = 1800 * kTicksPerSecond;
    for (const char *policy : kPolicies) {
        fleet::CohortConfig cohort;
        cohort.name = policy;
        cohort.policy = policy;
        cohort.devices = 120;
        cohort.seed = 7;
        cohort.harvesterCells = 1;
        cohort.capturePeriod = 60 * kTicksPerSecond;
        cohort.bufferCapacity = 4;
        cohort.taskTicks = 90 * kTicksPerSecond;
        config.cohorts.push_back(cohort);
    }
    return config;
}

/** Everything observable about one fleet run. */
struct FleetCapture
{
    std::string text;                  ///< rollup lines + summaries
    std::vector<obs::Event> events;    ///< run-sink stream
    std::vector<obs::Event> episodes;  ///< checkpoint/restore events
    std::vector<Snapshot> checkpoints;
    fleet::FleetResult result;
};

/** Run once, collecting snapshots in memory. */
FleetCapture
runOnce(const fleet::FleetConfig &config, unsigned jobs,
        bool checkpointing = false, Tick stopAfterTick = 0,
        Tick resumeTick = 0, const std::string *resumeState = nullptr)
{
    FleetCapture capture;
    obs::VectorSink sink;
    obs::VectorSink episodes;
    std::ostringstream text;

    fleet::FleetOptions options;
    options.jobs = jobs;
    options.sink = &sink;
    options.out = &text;
    options.stopAfterTick = stopAfterTick;
    options.resumeTick = resumeTick;
    options.resumeState = resumeState;
    if (checkpointing || resumeState != nullptr)
        options.episodeSink = &episodes;
    if (checkpointing) {
        options.checkpointSink = [&capture](std::string &&state,
                                            Tick tick) {
            capture.checkpoints.emplace_back(std::move(state), tick);
        };
    }

    capture.result = fleet::runFleet(config, options);
    capture.text = text.str();
    capture.events = sink.events();
    capture.episodes = episodes.events();
    return capture;
}

std::string
eventBytes(const std::vector<obs::Event> &events)
{
    std::ostringstream out;
    obs::writeJsonl(out, events, 0);
    return out.str();
}

std::string
countersLine(const fleet::CohortCounters &c)
{
    std::ostringstream out;
    out << c.captures << ' ' << c.missedCaptures << ' '
        << c.storedInputs << ' ' << c.dropsInteresting << ' '
        << c.dropsUninteresting << ' ' << c.jobsCompleted << ' '
        << c.degradedJobs << ' ' << c.powerFailures << ' '
        << c.checkpointSaves << ' ' << c.rechargeTicks << ' '
        << c.activeTicks << ' ' << c.chargeNanojoules << ' '
        << c.wastedNanojoules << ' ' << c.occupancySum << ' '
        << c.devicesOff;
    return out.str();
}

/** Fleet totals + per-shard totals + per-cohort totals, one string. */
std::string
resultLines(const fleet::FleetResult &result)
{
    std::ostringstream out;
    out << countersLine(result.fleetTotals) << '\n';
    for (const fleet::CohortCounters &shard : result.shardTotals)
        out << countersLine(shard) << '\n';
    for (const fleet::CohortResult &cohort : result.cohorts)
        out << cohort.name << ' ' << countersLine(cohort.totals)
            << '\n';
    return out.str();
}

/** Expect a halted prefix + resumed suffix == the straight run. */
void
expectStitchesToStraight(const FleetCapture &straight,
                         const FleetCapture &halted,
                         const FleetCapture &resumed)
{
    EXPECT_EQ(straight.text, halted.text + resumed.text);
    // The resumed run replays the halted segment's events into its
    // sink before continuing, so its stream alone is the whole run's.
    EXPECT_EQ(eventBytes(straight.events), eventBytes(resumed.events));
    EXPECT_EQ(countersLine(straight.result.fleetTotals),
              countersLine(resumed.result.fleetTotals));
}

TEST(FleetCheckpoint, FingerprintSeparatesKnobsButNotShards)
{
    const fleet::FleetConfig base = smallConfig(4);
    const std::uint64_t fp = fleet::fleetFingerprint(base);

    // The shard count must NOT matter: partitioning is unobservable
    // by the determinism contract, so a snapshot resumes under any.
    fleet::FleetConfig otherShards = smallConfig(16);
    EXPECT_EQ(fp, fleet::fleetFingerprint(otherShards));

    fleet::FleetConfig otherSlab = base;
    otherSlab.slabTicks = 300 * kTicksPerSecond;
    EXPECT_NE(fp, fleet::fleetFingerprint(otherSlab));

    fleet::FleetConfig otherHorizon = base;
    otherHorizon.horizonTicks = 7200 * kTicksPerSecond;
    EXPECT_NE(fp, fleet::fleetFingerprint(otherHorizon));

    fleet::FleetConfig otherSeed = base;
    otherSeed.cohorts[0].seed = 8;
    EXPECT_NE(fp, fleet::fleetFingerprint(otherSeed));

    fleet::FleetConfig otherPolicy = base;
    otherPolicy.cohorts[1].policy = "zygarde";
    EXPECT_NE(fp, fleet::fleetFingerprint(otherPolicy));

    fleet::FleetConfig otherDevices = base;
    otherDevices.cohorts[0].devices = 121;
    EXPECT_NE(fp, fleet::fleetFingerprint(otherDevices));

    fleet::FleetConfig otherBuffer = base;
    otherBuffer.cohorts[0].bufferCapacity = 5;
    EXPECT_NE(fp, fleet::fleetFingerprint(otherBuffer));
}

TEST(FleetCheckpoint, ValidBarrierTicksAreSlabEndsUpToTheHorizon)
{
    const fleet::FleetConfig config = smallConfig(1);
    const Tick slab = config.slabTicks;

    EXPECT_FALSE(fleet::validBarrierTick(config, 0));
    EXPECT_FALSE(fleet::validBarrierTick(config, slab / 2));
    EXPECT_TRUE(fleet::validBarrierTick(config, slab));
    EXPECT_TRUE(fleet::validBarrierTick(config, 3 * slab));
    EXPECT_TRUE(fleet::validBarrierTick(config, config.horizonTicks));
    EXPECT_FALSE(
        fleet::validBarrierTick(config, config.horizonTicks + slab));

    // A horizon that is not a slab multiple ends in a partial slab
    // whose barrier is the horizon itself.
    fleet::FleetConfig partial = config;
    partial.horizonTicks = 3 * slab + slab / 2;
    partial.rollupTicks = slab;
    EXPECT_TRUE(
        fleet::validBarrierTick(partial, partial.horizonTicks));
    EXPECT_FALSE(fleet::validBarrierTick(partial, 4 * slab));
}

TEST(FleetCheckpoint, CheckpointingIsByteInert)
{
    const fleet::FleetConfig config = smallConfig(4);
    const FleetCapture clean = runOnce(config, 2);
    const FleetCapture saving = runOnce(config, 2,
                                        /*checkpointing=*/true);

    ASSERT_EQ(saving.checkpoints.size(), 6u);
    EXPECT_EQ(saving.result.checkpointsWritten, 6u);
    EXPECT_EQ(clean.text, saving.text);
    EXPECT_EQ(eventBytes(clean.events), eventBytes(saving.events));
    EXPECT_EQ(resultLines(clean.result), resultLines(saving.result));

    // The episode stream carries exactly one save per barrier — and
    // stays out of the run sink, which is what the equalities above
    // prove.
    ASSERT_EQ(saving.episodes.size(), 6u);
    for (std::size_t i = 0; i < saving.episodes.size(); ++i) {
        const obs::Event &event = saving.episodes[i];
        EXPECT_EQ(event.kind, obs::EventKind::FleetCheckpoint);
        EXPECT_EQ(event.id, static_cast<std::uint64_t>(i + 1));
        EXPECT_EQ(event.tick, saving.checkpoints[i].second);
    }
}

TEST(FleetCheckpoint, SnapshotBlobsAreByteIdenticalAcrossJobs)
{
    const fleet::FleetConfig config = smallConfig(4);
    const FleetCapture serial = runOnce(config, 1, true);
    const FleetCapture parallel = runOnce(config, 4, true);

    ASSERT_EQ(serial.checkpoints.size(), parallel.checkpoints.size());
    for (std::size_t i = 0; i < serial.checkpoints.size(); ++i) {
        EXPECT_EQ(serial.checkpoints[i].second,
                  parallel.checkpoints[i].second);
        EXPECT_EQ(serial.checkpoints[i].first,
                  parallel.checkpoints[i].first)
            << "snapshot blob diverged at barrier "
            << serial.checkpoints[i].second;
    }
}

TEST(FleetCheckpoint, EncodeDecodeRoundTripsByteExactly)
{
    const fleet::FleetConfig config = smallConfig(4);
    const FleetCapture saving = runOnce(config, 2, true);
    ASSERT_GE(saving.checkpoints.size(), 3u);
    const std::string &blob = saving.checkpoints[2].first;

    const std::uint64_t fp = fleet::fleetFingerprint(config);
    fleet::FleetSnapshot snap;
    std::string error;
    ASSERT_TRUE(fleet::decodeFleetState(blob, config, snap, error))
        << error;
    EXPECT_EQ(snap.shards, 4u);
    EXPECT_EQ(snap.coordinator.size(), config.cohorts.size());
    EXPECT_EQ(snap.states.size(), 4u);
    EXPECT_EQ(fleet::encodeFleetState(snap, fp), blob);
}

TEST(FleetCheckpoint, ResumeAtEveryBarrierReplaysTheStraightRun)
{
    const fleet::FleetConfig config = smallConfig(4);
    const FleetCapture straight = runOnce(config, 2);
    const FleetCapture saving = runOnce(config, 2, true);
    ASSERT_EQ(saving.checkpoints.size(), 6u);

    // The final barrier is the horizon: resuming there replays the
    // whole run from its snapshot and emits only the summaries.
    for (const Snapshot &snap : saving.checkpoints) {
        const FleetCapture resumed = runOnce(
            config, 2, false, 0, snap.second, &snap.first);
        EXPECT_EQ(eventBytes(straight.events),
                  eventBytes(resumed.events))
            << "event stream diverged resuming from barrier "
            << snap.second;
        EXPECT_EQ(resultLines(straight.result),
                  resultLines(resumed.result))
            << "totals diverged resuming from barrier " << snap.second;
        EXPECT_EQ(resumed.result.resumedFromTick, snap.second);

        // Exactly one restore episode, stamped with the barrier.
        ASSERT_EQ(resumed.episodes.size(), 1u);
        EXPECT_EQ(resumed.episodes.front().kind,
                  obs::EventKind::FleetRestore);
        EXPECT_EQ(resumed.episodes.front().tick, snap.second);
    }
}

TEST(FleetCheckpoint, HaltedPrefixPlusResumedSuffixIsTheStraightRun)
{
    const fleet::FleetConfig config = smallConfig(4);
    const FleetCapture straight = runOnce(config, 2);
    const FleetCapture saving = runOnce(config, 2, true);

    for (std::size_t epoch = 1; epoch < 6; ++epoch) {
        const Tick barrier =
            static_cast<Tick>(epoch) * config.slabTicks;
        const FleetCapture halted =
            runOnce(config, 2, true, /*stopAfterTick=*/barrier);
        ASSERT_EQ(halted.checkpoints.size(), epoch);
        EXPECT_EQ(halted.result.haltedAtTick, barrier);

        // The halted run's last snapshot is the straight run's
        // snapshot for that barrier (same bytes), so resume from it.
        EXPECT_EQ(halted.checkpoints.back().first,
                  saving.checkpoints[epoch - 1].first);
        const FleetCapture resumed =
            runOnce(config, 2, false, 0, barrier,
                    &halted.checkpoints.back().first);
        expectStitchesToStraight(straight, halted, resumed);
    }
}

TEST(FleetCheckpoint, SnapshotResumesUnderAnyShardCount)
{
    const fleet::FleetConfig taken = smallConfig(4);
    const FleetCapture saving = runOnce(taken, 2, true);
    ASSERT_GE(saving.checkpoints.size(), 3u);
    const Snapshot &snap = saving.checkpoints[2];

    for (const unsigned shards : {1u, 4u, 16u}) {
        const fleet::FleetConfig target = smallConfig(shards);
        const FleetCapture straight = runOnce(target, 2);
        const FleetCapture resumed = runOnce(
            target, 2, false, 0, snap.second, &snap.first);
        EXPECT_EQ(eventBytes(straight.events),
                  eventBytes(resumed.events))
            << "4-shard snapshot diverged resuming under " << shards
            << " shards";
        EXPECT_EQ(countersLine(straight.result.fleetTotals),
                  countersLine(resumed.result.fleetTotals));
        ASSERT_EQ(resumed.result.shardTotals.size(), shards);

        // The shard-sum == fleetTotals identity survives re-sharding.
        fleet::CohortCounters sum;
        for (const fleet::CohortCounters &shard :
             resumed.result.shardTotals)
            sum.add(shard);
        EXPECT_EQ(countersLine(sum),
                  countersLine(resumed.result.fleetTotals));
    }
}

TEST(FleetCheckpoint, ResumeIsJobsIndependent)
{
    const fleet::FleetConfig config = smallConfig(8);
    const FleetCapture straight = runOnce(config, 1);
    const FleetCapture saving = runOnce(config, 1, true);
    ASSERT_GE(saving.checkpoints.size(), 4u);
    const Snapshot &snap = saving.checkpoints[3];

    for (const unsigned jobs : {1u, 4u}) {
        const FleetCapture resumed = runOnce(
            config, jobs, false, 0, snap.second, &snap.first);
        EXPECT_EQ(eventBytes(straight.events),
                  eventBytes(resumed.events))
            << "resume diverged at jobs " << jobs;
        EXPECT_EQ(resultLines(straight.result),
                  resultLines(resumed.result));
    }
}

TEST(FleetCheckpoint, CadenceSkipsBarriersButAlwaysSavesTheFinal)
{
    fleet::FleetConfig config = smallConfig(2);
    FleetCapture capture;
    obs::VectorSink sink;

    fleet::FleetOptions options;
    options.jobs = 2;
    options.sink = &sink;
    options.checkpointEverySlabs = 4;
    options.checkpointSink = [&capture](std::string &&state,
                                        Tick tick) {
        capture.checkpoints.emplace_back(std::move(state), tick);
    };
    capture.result = fleet::runFleet(config, options);

    // 6 barriers at cadence 4: epoch 4 plus the forced final.
    ASSERT_EQ(capture.checkpoints.size(), 2u);
    EXPECT_EQ(capture.checkpoints[0].second, 4 * config.slabTicks);
    EXPECT_EQ(capture.checkpoints[1].second, config.horizonTicks);
    EXPECT_EQ(capture.result.checkpointsWritten, 2u);
}

// --- Named decode diagnostics ------------------------------------------

TEST(FleetCheckpoint, DecodeRejectsTruncation)
{
    const fleet::FleetConfig config = smallConfig(2);
    const FleetCapture saving = runOnce(config, 2, true);
    ASSERT_FALSE(saving.checkpoints.empty());
    const std::string &blob = saving.checkpoints.front().first;

    fleet::FleetSnapshot snap;
    std::string error;
    EXPECT_FALSE(fleet::decodeFleetState(std::string(), config, snap,
                                         error));
    EXPECT_NE(error.find("truncated fleet state"), std::string::npos)
        << error;

    EXPECT_FALSE(fleet::decodeFleetState(
        blob.substr(0, blob.size() / 2), config, snap, error));
    EXPECT_NE(error.find("truncated fleet state"), std::string::npos)
        << error;
}

TEST(FleetCheckpoint, DecodeRejectsTrailingBytes)
{
    const fleet::FleetConfig config = smallConfig(2);
    const FleetCapture saving = runOnce(config, 2, true);
    ASSERT_FALSE(saving.checkpoints.empty());
    std::string blob = saving.checkpoints.front().first;
    blob += '\0';

    fleet::FleetSnapshot snap;
    std::string error;
    EXPECT_FALSE(fleet::decodeFleetState(blob, config, snap, error));
    EXPECT_NE(error.find("trailing bytes"), std::string::npos)
        << error;
}

TEST(FleetCheckpoint, DecodeRejectsCohortCountMismatch)
{
    const fleet::FleetConfig config = smallConfig(2);
    const FleetCapture saving = runOnce(config, 2, true);
    ASSERT_FALSE(saving.checkpoints.empty());

    fleet::FleetConfig oneCohort = config;
    oneCohort.cohorts.pop_back();
    fleet::FleetSnapshot snap;
    std::string error;
    EXPECT_FALSE(fleet::decodeFleetState(
        saving.checkpoints.front().first, oneCohort, snap, error));
    EXPECT_NE(error.find("cohort count mismatch"), std::string::npos)
        << error;
}

TEST(FleetCheckpoint, DecodeNamesTheShardACorruptSectionHitBy)
{
    const fleet::FleetConfig config = smallConfig(2);
    const FleetCapture saving = runOnce(config, 2, true);
    ASSERT_FALSE(saving.checkpoints.empty());
    std::string blob = saving.checkpoints.front().first;

    // Flip a byte near the end: inside the last shard's section.
    blob[blob.size() - 8] =
        static_cast<char>(blob[blob.size() - 8] ^ 0x01);
    fleet::FleetSnapshot snap;
    std::string error;
    EXPECT_FALSE(fleet::decodeFleetState(blob, config, snap, error));
    EXPECT_NE(error.find("shard"), std::string::npos) << error;
    EXPECT_NE(error.find("CRC mismatch"), std::string::npos) << error;
}

TEST(FleetCheckpoint, DecodeRejectsAForeignConfigurationsDevices)
{
    // A snapshot from a config with a different device count carries
    // a different fleet fingerprint, so the per-shard fingerprint
    // check fires before anything else is believed.
    const fleet::FleetConfig taken = smallConfig(2);
    const FleetCapture saving = runOnce(taken, 2, true);
    ASSERT_FALSE(saving.checkpoints.empty());

    fleet::FleetConfig fewer = taken;
    fewer.cohorts[0].devices = 60;
    fleet::FleetSnapshot snap;
    std::string error;
    EXPECT_FALSE(fleet::decodeFleetState(
        saving.checkpoints.front().first, fewer, snap, error));
    EXPECT_NE(error.find("fingerprint mismatch"), std::string::npos)
        << error;
}

TEST(FleetCheckpoint, DecodeRejectsBlocksThatDoNotTileTheCohort)
{
    // Defense in depth behind the fingerprint: a blob whose section
    // checksums pass but whose block ranges do not partition the
    // configuration's devices is still rejected. Built by tampering
    // with a decoded snapshot and re-encoding it (which re-seals the
    // CRCs), not by bit-flipping.
    const fleet::FleetConfig config = smallConfig(2);
    const FleetCapture saving = runOnce(config, 2, true);
    ASSERT_FALSE(saving.checkpoints.empty());
    const std::uint64_t fp = fleet::fleetFingerprint(config);

    fleet::FleetSnapshot snap;
    std::string error;
    ASSERT_TRUE(fleet::decodeFleetState(
        saving.checkpoints.front().first, config, snap, error))
        << error;
    snap.states[0].blocks[0].firstDevice += 1;
    EXPECT_FALSE(fleet::decodeFleetState(
        fleet::encodeFleetState(snap, fp), config, snap, error));
    EXPECT_NE(error.find("device range mismatch"), std::string::npos)
        << error;
}

using FleetCheckpointDeathTest = ::testing::Test;

TEST(FleetCheckpointDeathTest, ResumePanicsOnANonBarrierTick)
{
    const fleet::FleetConfig config = smallConfig(2);
    const FleetCapture saving = runOnce(config, 2, true);
    ASSERT_FALSE(saving.checkpoints.empty());
    const std::string &blob = saving.checkpoints.front().first;

    fleet::FleetOptions options;
    options.jobs = 1;
    options.resumeTick = config.slabTicks / 2;
    options.resumeState = &blob;
    EXPECT_DEATH((void)fleet::runFleet(config, options),
                 "barrier epoch mismatch");
}

TEST(FleetCheckpointDeathTest, ResumePanicsOnAMalformedBlob)
{
    const fleet::FleetConfig config = smallConfig(2);
    const std::string garbage = "not a fleet snapshot";

    fleet::FleetOptions options;
    options.jobs = 1;
    options.resumeTick = config.slabTicks;
    options.resumeState = &garbage;
    EXPECT_DEATH((void)fleet::runFleet(config, options),
                 "fleet resume failed");
}

} // namespace
