/**
 * @file
 * Crash/chaos harness for fleet checkpoint streams (DESIGN.md
 * section 17): a real fleet run is interrupted at every coordinator
 * barrier — cooperatively (the stopAfterTick halt), by a seeded
 * random draw of (policy, shards, jobs, kill epoch), and by SIGKILL
 * mid-append in a forked child — and resumed from the stream on
 * disk. Every resumed run must byte-match the straight run: rollup
 * text, run-sink event stream, fleet/shard/cohort integer totals,
 * and the checkpoint stream itself.
 *
 * The torn-tail discipline rides the append-only write protocol: a
 * crash can only truncate the final record, so the scanner drops it
 * and the prior barrier wins; anything else is corruption and dies
 * with a named diagnostic (the death tests at the bottom pin each
 * message).
 */

#include <gtest/gtest.h>

#include <csignal>
#include <cstdint>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#include <utility>
#include <vector>

#include "fleet/checkpoint.hpp"
#include "fleet/fleet.hpp"
#include "obs/trace_io.hpp"
#include "obs/trace_sink.hpp"
#include "sim/checkpoint.hpp"

namespace {

using namespace quetzal;

/** One cohort per policy in `policies`, 60 devices each. */
fleet::FleetConfig
chaosConfig(unsigned shards, std::vector<std::string> policies)
{
    fleet::FleetConfig config;
    config.shards = shards;
    config.slabTicks = 600 * kTicksPerSecond;
    config.horizonTicks = 3600 * kTicksPerSecond;
    config.rollupTicks = 1800 * kTicksPerSecond;
    for (const std::string &policy : policies) {
        fleet::CohortConfig cohort;
        cohort.name = policy;
        cohort.policy = policy;
        cohort.devices = 60;
        cohort.seed = 11;
        cohort.harvesterCells = 1;
        cohort.capturePeriod = 60 * kTicksPerSecond;
        cohort.bufferCapacity = 4;
        cohort.taskTicks = 90 * kTicksPerSecond;
        config.cohorts.push_back(cohort);
    }
    return config;
}

/** Everything a chaos comparison looks at. */
struct Observed
{
    std::string text;
    std::string traceText;
    fleet::FleetResult result;
};

std::string
countersLine(const fleet::CohortCounters &c)
{
    std::ostringstream out;
    out << c.captures << ' ' << c.missedCaptures << ' '
        << c.storedInputs << ' ' << c.dropsInteresting << ' '
        << c.dropsUninteresting << ' ' << c.jobsCompleted << ' '
        << c.degradedJobs << ' ' << c.powerFailures << ' '
        << c.checkpointSaves << ' ' << c.rechargeTicks << ' '
        << c.activeTicks << ' ' << c.chargeNanojoules << ' '
        << c.wastedNanojoules << ' ' << c.occupancySum << ' '
        << c.devicesOff;
    return out.str();
}

std::string
resultLines(const fleet::FleetResult &result)
{
    std::ostringstream out;
    out << countersLine(result.fleetTotals) << '\n';
    for (const fleet::CohortCounters &shard : result.shardTotals)
        out << countersLine(shard) << '\n';
    for (const fleet::CohortResult &cohort : result.cohorts)
        out << cohort.name << ' ' << countersLine(cohort.totals)
            << '\n';
    return out.str();
}

/**
 * Run once against a checkpoint stream file, mirroring exactly what
 * the scenario engine does with --fleet-checkpoint/--fleet-resume:
 * resume from the stream's last complete record (truncating a torn
 * tail first), append new barrier snapshots to the same stream.
 */
Observed
runAgainstStream(const fleet::FleetConfig &config, unsigned jobs,
                 const std::string &path, bool resume,
                 Tick stopAfterTick = 0)
{
    Observed observed;
    obs::VectorSink sink;
    std::ostringstream text;
    const std::uint64_t fingerprint = fleet::fleetFingerprint(config);

    fleet::FleetOptions options;
    options.jobs = jobs;
    options.sink = &sink;
    options.out = &text;
    options.stopAfterTick = stopAfterTick;
    options.checkpointSink = [&path, fingerprint](std::string &&state,
                                                  Tick tick) {
        sim::appendCheckpointFile(path, state, fingerprint, tick);
    };

    std::string resumeBlob;
    sim::CheckpointScan scan;
    if (resume) {
        scan = sim::readCheckpointStream(path, fingerprint);
        EXPECT_TRUE(fleet::validBarrierTick(config,
                                            scan.last.boundaryTick));
        resumeBlob = std::move(scan.last.state);
        options.resumeTick = scan.last.boundaryTick;
        options.resumeState = &resumeBlob;
        options.resumeTornTail = scan.tornTail;
        sim::truncateCheckpointFile(path, scan.validBytes);
    } else {
        std::ofstream fresh(path,
                            std::ios::binary | std::ios::trunc);
    }

    observed.result = fleet::runFleet(config, options);
    observed.text = text.str();
    std::ostringstream trace;
    obs::writeJsonl(trace, sink.events(), 0);
    observed.traceText = trace.str();
    return observed;
}

std::string
fileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << path;
    std::ostringstream bytes;
    bytes << in.rdbuf();
    return bytes.str();
}

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + "quetzal_chaos_" + name + ".qzck";
}

/**
 * The kill-at-barrier-N drill: checkpoint a straight run to one
 * stream, kill a second run at barrier `epoch`, resume it, and
 * demand byte identity everywhere — including between the two
 * streams on disk.
 */
void
killResumeAndCompare(const fleet::FleetConfig &config, unsigned jobs,
                     std::size_t epoch, const std::string &tag)
{
    const std::string straightPath = tempPath(tag + "_straight");
    const std::string chaosPath = tempPath(tag + "_chaos");

    const Observed straight =
        runAgainstStream(config, jobs, straightPath, false);
    const Observed killed = runAgainstStream(
        config, jobs, chaosPath, false,
        static_cast<Tick>(epoch) * config.slabTicks);
    EXPECT_EQ(killed.result.haltedAtTick,
              static_cast<Tick>(epoch) * config.slabTicks);

    const Observed resumed =
        runAgainstStream(config, jobs, chaosPath, true);
    EXPECT_EQ(resumed.result.resumedFromTick,
              static_cast<Tick>(epoch) * config.slabTicks);

    EXPECT_EQ(straight.text, killed.text + resumed.text)
        << tag << ": stdout did not stitch at barrier " << epoch;
    EXPECT_EQ(straight.traceText, resumed.traceText)
        << tag << ": trace diverged at barrier " << epoch;
    EXPECT_EQ(resultLines(straight.result), resultLines(resumed.result))
        << tag << ": totals diverged at barrier " << epoch;
    EXPECT_EQ(fileBytes(straightPath), fileBytes(chaosPath))
        << tag << ": resumed stream is not the straight stream at "
        << "barrier " << epoch;

    std::remove(straightPath.c_str());
    std::remove(chaosPath.c_str());
}

TEST(FleetChaos, KillAtEveryBarrierResumesByteIdentically)
{
    // Every (jobs, shards) cell of the acceptance matrix, killed at
    // every pre-horizon barrier epoch of the 6-slab hour.
    for (const unsigned jobs : {1u, 4u}) {
        for (const unsigned shards : {1u, 4u, 16u}) {
            const fleet::FleetConfig config =
                chaosConfig(shards, {"sjf-ibo", "greedy-fcfs"});
            for (std::size_t epoch = 1; epoch < 6; ++epoch) {
                killResumeAndCompare(
                    config, jobs, epoch,
                    "j" + std::to_string(jobs) + "s" +
                        std::to_string(shards) + "e" +
                        std::to_string(epoch));
            }
        }
    }
}

TEST(FleetChaos, RandomizedInterruptionPointsProperty)
{
    // Seeded draws over the whole space the harness spans; every
    // draw must stitch. The seed is fixed so a failure reproduces.
    static const char *const kPolicies[] = {
        "sjf-ibo", "greedy-fcfs", "zygarde", "delgado-famaey"};
    std::mt19937_64 rng(0x20260807ull);

    for (int draw = 0; draw < 6; ++draw) {
        const std::string policy =
            kPolicies[rng() % (sizeof kPolicies / sizeof *kPolicies)];
        const unsigned shards = 1 + static_cast<unsigned>(rng() % 8);
        const unsigned jobs = 1 + static_cast<unsigned>(rng() % 4);
        const std::size_t epoch = 1 + rng() % 5;

        const fleet::FleetConfig config =
            chaosConfig(shards, {policy, "sjf-ibo"});
        killResumeAndCompare(config, jobs, epoch,
                             "draw" + std::to_string(draw));
    }
}

TEST(FleetChaos, SigkilledWriterLeavesATornTailAndThePriorBarrierWins)
{
    const fleet::FleetConfig config =
        chaosConfig(4, {"sjf-ibo", "greedy-fcfs"});
    const std::uint64_t fingerprint = fleet::fleetFingerprint(config);
    const std::string path = tempPath("sigkill");
    std::remove(path.c_str());

    const pid_t pid = fork();
    ASSERT_GE(pid, 0) << "fork failed";
    if (pid == 0) {
        // Child: append complete records for the first two barriers,
        // then die by SIGKILL halfway through the third append — the
        // torn write a preempted shard host actually produces.
        fleet::FleetOptions options;
        options.jobs = 2;
        std::size_t epoch = 0;
        options.checkpointSink = [&](std::string &&state, Tick tick) {
            ++epoch;
            if (epoch <= 2) {
                sim::appendCheckpointFile(path, state, fingerprint,
                                          tick);
                return;
            }
            const std::string framed =
                sim::frameCheckpoint(state, fingerprint, tick);
            std::ofstream torn(path,
                               std::ios::binary | std::ios::app);
            torn.write(framed.data(),
                       static_cast<std::streamsize>(framed.size() / 2));
            torn.close();
            ::raise(SIGKILL);
        };
        (void)fleet::runFleet(config, options);
        ::_exit(0); // not reached: the third barrier kills us
    }

    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status))
        << "child exited instead of dying by signal";
    EXPECT_EQ(WTERMSIG(status), SIGKILL);

    // The scan detects the torn third record and resolves to the
    // second barrier's complete one.
    const sim::CheckpointScan scan =
        sim::readCheckpointStream(path, fingerprint);
    EXPECT_EQ(scan.records, 2u);
    EXPECT_TRUE(scan.tornTail);
    EXPECT_EQ(scan.last.boundaryTick, 2 * config.slabTicks);

    // And the resume path (torn-tail truncation included) still
    // reconstructs the straight run and the straight stream.
    const std::string straightPath = tempPath("sigkill_straight");
    const Observed straight =
        runAgainstStream(config, 2, straightPath, false);
    const Observed resumed = runAgainstStream(config, 2, path, true);
    EXPECT_EQ(straight.traceText, resumed.traceText);
    EXPECT_EQ(resultLines(straight.result), resultLines(resumed.result));
    EXPECT_EQ(fileBytes(straightPath), fileBytes(path));

    std::remove(straightPath.c_str());
    std::remove(path.c_str());
}

TEST(FleetChaos, TruncationSweepAlwaysResolvesToThePriorBarrier)
{
    // A three-record stream cut at *every* byte position: each cut
    // must either resolve to the last complete record before the cut
    // (torn tail or clean boundary) or — with no complete record —
    // fail with a named diagnostic. No cut may crash or mis-resolve.
    const std::string states[] = {"alpha", "bravo!", "charlie blob"};
    std::string stream;
    std::vector<std::size_t> boundaries; // offsets after each record
    for (std::size_t i = 0; i < 3; ++i) {
        stream += sim::frameCheckpoint(states[i], 0x5eedull,
                                       static_cast<Tick>(600 * (i + 1)));
        boundaries.push_back(stream.size());
    }

    for (std::size_t cut = 0; cut <= stream.size(); ++cut) {
        sim::CheckpointScan scan;
        std::string error;
        const bool ok = sim::scanCheckpointStream(stream.substr(0, cut),
                                                  scan, error);
        std::size_t complete = 0;
        while (complete < boundaries.size() &&
               boundaries[complete] <= cut)
            ++complete;

        if (complete == 0) {
            EXPECT_FALSE(ok) << "cut " << cut;
            EXPECT_FALSE(error.empty()) << "cut " << cut;
            continue;
        }
        ASSERT_TRUE(ok) << "cut " << cut << ": " << error;
        EXPECT_EQ(scan.records, complete) << "cut " << cut;
        EXPECT_EQ(scan.last.state, states[complete - 1])
            << "cut " << cut;
        EXPECT_EQ(scan.validBytes, boundaries[complete - 1])
            << "cut " << cut;
        EXPECT_EQ(scan.tornTail, cut != boundaries[complete - 1])
            << "cut " << cut;
    }
}

// --- Pinned corruption diagnostics -------------------------------------

TEST(FleetChaos, ScanRejectsACrcFlipOnACompleteRecord)
{
    // A flipped bit inside a *complete* record is corruption, never a
    // torn tail — complete records cannot tear under the append-only
    // discipline, so the prior-barrier rule must not mask it.
    std::string stream =
        sim::frameCheckpoint("first", 1, 600) +
        sim::frameCheckpoint("second", 1, 1200);
    stream[33] = static_cast<char>(stream[33] ^ 0x08); // first state

    sim::CheckpointScan scan;
    std::string error;
    EXPECT_FALSE(sim::scanCheckpointStream(stream, scan, error));
    EXPECT_NE(error.find("CRC mismatch"), std::string::npos) << error;
}

TEST(FleetChaos, ScanRejectsAStreamWithNoCompleteRecord)
{
    sim::CheckpointScan scan;
    std::string error;

    EXPECT_FALSE(sim::scanCheckpointStream(std::string(), scan, error));
    EXPECT_NE(error.find("no complete record"), std::string::npos)
        << error;

    const std::string lone = sim::frameCheckpoint("only", 1, 600);
    EXPECT_FALSE(sim::scanCheckpointStream(lone.substr(0, 20), scan,
                                           error));
    EXPECT_NE(error.find("truncated checkpoint header"),
              std::string::npos)
        << error;
    EXPECT_FALSE(sim::scanCheckpointStream(
        lone.substr(0, lone.size() - 2), scan, error));
    EXPECT_NE(error.find("truncated checkpoint state"),
              std::string::npos)
        << error;
}

TEST(FleetChaos, ScanRejectsGarbageBetweenRecords)
{
    const std::string stream = sim::frameCheckpoint("first", 1, 600) +
        "garbage" + sim::frameCheckpoint("second", 1, 1200);
    sim::CheckpointScan scan;
    std::string error;
    EXPECT_FALSE(sim::scanCheckpointStream(stream, scan, error));
    EXPECT_NE(error.find("bad magic"), std::string::npos) << error;
}

TEST(FleetChaos, ScanRejectsAFutureSchemaVersion)
{
    std::string stream = sim::frameCheckpoint("first", 1, 600);
    stream[4] = static_cast<char>(sim::kCheckpointMajor + 1);
    sim::CheckpointScan scan;
    std::string error;
    EXPECT_FALSE(sim::scanCheckpointStream(stream, scan, error));
    EXPECT_NE(error.find("unsupported checkpoint schema version"),
              std::string::npos)
        << error;
}

using FleetChaosDeathTest = ::testing::Test;

TEST(FleetChaosDeathTest, ResumeDiesOnAWrongFingerprintStream)
{
    const std::string path = tempPath("wrong_fp");
    sim::appendCheckpointFile(path, "state bytes", 0x1111, 600);
    EXPECT_EXIT((void)sim::readCheckpointStream(path, 0x2222),
                ::testing::ExitedWithCode(1),
                "belongs to a different experiment");
    std::remove(path.c_str());
}

TEST(FleetChaosDeathTest, ResumeDiesOnATruncatedLoneRecordFile)
{
    const std::string path = tempPath("lone_torn");
    const std::string framed = sim::frameCheckpoint("state", 7, 600);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(framed.data(),
              static_cast<std::streamsize>(framed.size() - 4));
    out.close();
    EXPECT_EXIT((void)sim::readCheckpointStream(path, 7),
                ::testing::ExitedWithCode(1),
                "truncated checkpoint state");
    std::remove(path.c_str());
}

TEST(FleetChaosDeathTest, ResumeDiesOnANonBarrierCheckpointTick)
{
    // A stream whose record was taken at a tick that is not a
    // coordinator barrier of the resuming configuration: the engine
    // refuses to resume mid-slab.
    const fleet::FleetConfig config =
        chaosConfig(2, {"sjf-ibo", "greedy-fcfs"});
    const std::string blob = "irrelevant: the tick check fires first";

    fleet::FleetOptions options;
    options.jobs = 1;
    options.resumeTick = config.slabTicks + 1;
    options.resumeState = &blob;
    EXPECT_DEATH((void)fleet::runFleet(config, options),
                 "barrier epoch mismatch");
}

} // namespace
