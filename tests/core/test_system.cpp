/**
 * @file
 * Tests for TaskSystem registration, tracking and E[S] computation.
 */

#include <gtest/gtest.h>

#include "core_test_fixtures.hpp"

namespace quetzal {
namespace core {
namespace {

using testing_fixtures::makeSmallSystem;

TEST(TaskSystem, RegistersTasksAndJobs)
{
    auto s = makeSmallSystem();
    EXPECT_EQ(s.system->taskCount(), 2u);
    EXPECT_EQ(s.system->jobCount(), 2u);
    const Job &classify = s.system->job(s.classifyJob);
    EXPECT_EQ(classify.tasks.size(), 1u);
    ASSERT_TRUE(classify.degradableIndex.has_value());
    EXPECT_EQ(*classify.degradableIndex, 0u);
    ASSERT_TRUE(classify.onPositive.has_value());
    EXPECT_EQ(*classify.onPositive, s.transmitJob);
}

TEST(TaskSystem, ProfilesOptionsThroughCircuit)
{
    auto s = makeSmallSystem();
    const Task &radio = s.system->task(s.radioTask);
    // Higher power options get higher diode codes.
    EXPECT_GT(radio.option(0).hwProfile.execCode, 0);
    const Task &ml = s.system->task(s.mlTask);
    EXPECT_GT(radio.option(0).hwProfile.execCode,
              ml.option(1).hwProfile.execCode);
    // Premult tables are filled.
    EXPECT_EQ(ml.option(0).hwProfile.premultTicks[0], 1000u);
}

TEST(TaskSystem, ArrivalTrackingWithSpawns)
{
    auto s = makeSmallSystem();
    for (int i = 0; i < 8; ++i) {
        s.system->recordCapture(true);
        if (i % 2 == 0)
            s.system->recordSpawn();
    }
    EXPECT_NEAR(s.system->arrivalsPerSecond(), 1.5, 1e-12);
}

TEST(TaskSystem, ExecutionProbabilityConditionalOnJob)
{
    auto s = makeSmallSystem();
    const Job &classify = s.system->job(s.classifyJob);
    // classify completes 4 times, ml ran each time.
    for (int i = 0; i < 4; ++i)
        s.system->recordJobCompletion(classify, {true});
    EXPECT_DOUBLE_EQ(s.system->executionProbability(s.mlTask), 1.0);
    // The radio task was never part of those completions: its
    // probability stays at the conservative default.
    EXPECT_DOUBLE_EQ(s.system->executionProbability(s.radioTask), 1.0);
    // A skipped execution dilutes the estimate.
    s.system->recordJobCompletion(classify, {false});
    EXPECT_DOUBLE_EQ(s.system->executionProbability(s.mlTask), 0.8);
}

TEST(TaskSystem, MeasureInputPowerProducesCodeAndWatts)
{
    auto s = makeSmallSystem();
    const PowerReading low = s.system->measureInputPower(1e-3);
    const PowerReading high = s.system->measureInputPower(50e-3);
    EXPECT_DOUBLE_EQ(low.watts, 1e-3);
    EXPECT_DOUBLE_EQ(high.watts, 50e-3);
    EXPECT_GT(high.code, low.code);
}

TEST(TaskSystem, ExpectedJobServiceWeightsByProbability)
{
    auto s = makeSmallSystem();
    EnergyAwareEstimator exact(false);
    const PowerReading power{1.0, 255}; // 1 W: compute bound
    const Job &classify = s.system->job(s.classifyJob);

    // Probability defaults to 1.0: E[S] = ml-high latency = 1 s.
    EXPECT_NEAR(s.system->expectedJobService(classify, exact, power),
                1.0, 1e-9);

    // Dilute ml probability to 0.5.
    for (int i = 0; i < 2; ++i)
        s.system->recordJobCompletion(classify, {i == 0});
    EXPECT_NEAR(s.system->expectedJobService(classify, exact, power),
                0.5, 1e-9);

    // Option override: ml-low latency = 0.1 s, weighted 0.5.
    EXPECT_NEAR(s.system->expectedJobService(classify, exact, power,
                                             {1}),
                0.05, 1e-9);
}

TEST(TaskSystem, ExpectedJobServiceScalesWithPower)
{
    auto s = makeSmallSystem();
    EnergyAwareEstimator exact(false);
    const Job &transmit = s.system->job(s.transmitJob);
    // radio-high: 0.8 s, 80 mJ. At 8 mW input: 10 s energy-bound.
    const PowerReading low{8e-3, 0};
    EXPECT_NEAR(s.system->expectedJobService(transmit, exact, low),
                10.0, 1e-9);
    // At 200 mW: compute bound, 0.8 s.
    const PowerReading high{200e-3, 0};
    EXPECT_NEAR(s.system->expectedJobService(transmit, exact, high),
                0.8, 1e-9);
}

TEST(TaskSystemDeathTest, RegistrationValidation)
{
    auto s = makeSmallSystem();
    EXPECT_EXIT(s.system->addJob("bad", {}),
                ::testing::ExitedWithCode(1), "needs tasks");
    EXPECT_EXIT(s.system->addJob("bad", {99}),
                ::testing::ExitedWithCode(1), "unknown");
    // Two degradable tasks in one job violate the paper's constraint.
    EXPECT_EXIT(s.system->addJob("bad", {s.mlTask, s.radioTask}),
                ::testing::ExitedWithCode(1), "more than");
}

TEST(TaskSystemDeathTest, TaskLimitEnforced)
{
    TaskSystem system;
    for (std::size_t i = 0; i < kMaxTasks; ++i)
        system.addTask("t", {{"o", 10, 1e-3}});
    EXPECT_EXIT(system.addTask("over", {{"o", 10, 1e-3}}),
                ::testing::ExitedWithCode(1), "task limit");
}

} // namespace
} // namespace core
} // namespace quetzal
