/**
 * @file
 * Fine-grained tests of Algorithm 2's quality walk with the paper's
 * maximum of four degradation options per task: the engine must pick
 * the *highest-quality* option that avoids the predicted overflow —
 * not merely toggle between extremes — and step exactly one notch
 * further as pressure rises.
 */

#include <gtest/gtest.h>

#include "core/ibo_engine.hpp"

namespace quetzal {
namespace core {
namespace {

/**
 * One four-option degradable task; latencies are compute-bound at
 * the probe power so the math is exact: 1.6 / 0.8 / 0.4 / 0.2 s.
 */
struct FourOptionSystem
{
    TaskSystem system;
    TaskId task;
    queueing::JobId job;

    FourOptionSystem()
    {
        task = system.addTask("vision",
                              {{"xl", 1600, 10e-3},
                               {"l", 800, 10e-3},
                               {"m", 400, 10e-3},
                               {"s", 200, 10e-3}});
        job = system.addJob("process", {task});
        // lambda = 1 arrival/s.
        for (int i = 0; i < 64; ++i)
            system.recordCapture(true);
    }
};

/** Buffer with a given backlog of process-job inputs. */
queueing::InputBuffer
backlogOf(std::size_t entries, queueing::JobId job,
          std::size_t capacity = 10)
{
    queueing::InputBuffer buffer(capacity);
    for (std::size_t i = 0; i < entries; ++i) {
        queueing::InputRecord record;
        record.id = i + 1;
        record.jobId = job;
        buffer.tryPush(record);
    }
    return buffer;
}

/** Compute-bound probe: 1 W input power. */
const PowerReading kFullPower{1.0, 255};

TEST(FourOptionWalk, RisingPressureDegradesOneNotchAtATime)
{
    // At lambda = 1/s, option latencies give rho = 1.6 / 0.8 / 0.4 /
    // 0.2. Options "xl" can never keep up; "l" keeps up but with a
    // long busy period. The engine should move down the list only as
    // occupancy (pressure) actually demands.
    FourOptionSystem s;
    EnergyAwareEstimator exact(false);
    IboReactionEngine engine;

    // Occupancy 1: "l" (rho 0.8 -> horizon 0.8/0.2 = 4 s; expected
    // arrivals 4 < headroom 9). "xl" is unstable -> rejected.
    auto d1 = engine.adapt(s.system, s.system.job(s.job),
                           backlogOf(1, s.job), exact, kFullPower, 0.0);
    EXPECT_TRUE(d1.iboPredicted);
    EXPECT_EQ(d1.optionPerTask[0], 1u);

    // Occupancy 5: "l" horizon = 5*0.8/0.2 = 20 s -> 20 >= 5: too
    // slow. "m" horizon = 5*0.4/0.6 = 3.33 -> 3.33 < 5: chosen.
    auto d5 = engine.adapt(s.system, s.system.job(s.job),
                           backlogOf(5, s.job), exact, kFullPower, 0.0);
    EXPECT_TRUE(d5.iboPredicted);
    EXPECT_EQ(d5.optionPerTask[0], 2u);
    EXPECT_TRUE(d5.overflowAvoided);

    // Occupancy 9: headroom 1. "m" horizon = 9*0.4/0.6 = 6 >= 1;
    // "s" horizon = 9*0.2/0.8 = 2.25 >= 1 too: nothing avoids ->
    // fastest option, not avoided.
    auto d9 = engine.adapt(s.system, s.system.job(s.job),
                           backlogOf(9, s.job), exact, kFullPower, 0.0);
    EXPECT_TRUE(d9.iboPredicted);
    EXPECT_EQ(d9.optionPerTask[0], 3u);
    EXPECT_FALSE(d9.overflowAvoided);
}

TEST(FourOptionWalk, NoPressureKeepsTopQuality)
{
    FourOptionSystem s;
    // Rebuild lambda at a gentle 0.25/s.
    TaskSystem calm;
    const TaskId task = calm.addTask("vision",
                                     {{"xl", 1600, 10e-3},
                                      {"l", 800, 10e-3},
                                      {"m", 400, 10e-3},
                                      {"s", 200, 10e-3}});
    const queueing::JobId job = calm.addJob("process", {task});
    for (int i = 0; i < 64; ++i)
        calm.recordCapture(i % 4 == 0);

    EnergyAwareEstimator exact(false);
    IboReactionEngine engine;
    const auto decision =
        engine.adapt(calm, calm.job(job), backlogOf(1, job), exact,
                     kFullPower, 0.0);
    // rho = 0.25 * 1.6 = 0.4; horizon 1.6/0.6 = 2.67 s; expected
    // arrivals 0.67 < headroom 9 -> full quality holds.
    EXPECT_FALSE(decision.iboPredicted);
    EXPECT_EQ(decision.optionPerTask[0], 0u);
}

TEST(FourOptionWalk, RecoveryClimbsAllTheWayBack)
{
    FourOptionSystem s;
    EnergyAwareEstimator exact(false);
    IboReactionEngine engine;

    // Force deep degradation first...
    const auto pressured =
        engine.adapt(s.system, s.system.job(s.job),
                     backlogOf(9, s.job), exact, kFullPower, 0.0);
    EXPECT_EQ(pressured.optionPerTask[0], 3u);

    // ...then evaluate a calm buffer: the walk restarts from the top
    // each round, so quality returns in one decision, not one notch
    // per decision.
    TaskSystem calm;
    const TaskId task = calm.addTask("vision",
                                     {{"xl", 1600, 10e-3},
                                      {"l", 800, 10e-3},
                                      {"m", 400, 10e-3},
                                      {"s", 200, 10e-3}});
    const queueing::JobId job = calm.addJob("process", {task});
    for (int i = 0; i < 64; ++i)
        calm.recordCapture(i % 8 == 0);
    const auto relaxed =
        engine.adapt(calm, calm.job(job), backlogOf(1, job), exact,
                     kFullPower, 0.0);
    EXPECT_EQ(relaxed.optionPerTask[0], 0u);
}

} // namespace
} // namespace core
} // namespace quetzal
