/**
 * @file
 * Tests for the PID error-mitigation controller (paper section 4.3).
 */

#include <cmath>

#include <gtest/gtest.h>

#include "core/pid.hpp"

namespace quetzal {
namespace core {
namespace {

PidConfig
unitGains()
{
    PidConfig cfg;
    cfg.kp = 1.0;
    cfg.ki = 0.0;
    cfg.kd = 0.0;
    cfg.derivativeTau = 0.0;
    cfg.outputMin = -100.0;
    cfg.outputMax = 100.0;
    return cfg;
}

TEST(Pid, ZeroBeforeFirstUpdate)
{
    PidController pid;
    EXPECT_EQ(pid.output(), 0.0);
    EXPECT_EQ(pid.updates(), 0ul);
}

TEST(Pid, ProportionalOnly)
{
    PidController pid(unitGains());
    EXPECT_DOUBLE_EQ(pid.update(3.0, 1.0), 3.0);
    EXPECT_DOUBLE_EQ(pid.update(-2.0, 1.0), -2.0);
}

TEST(Pid, IntegralAccumulates)
{
    PidConfig cfg = unitGains();
    cfg.kp = 0.0;
    cfg.ki = 1.0;
    PidController pid(cfg);
    // Trapezoidal: first step integrates (e0 + e1)/2 with e0 = 0.
    EXPECT_DOUBLE_EQ(pid.update(2.0, 1.0), 1.0);
    EXPECT_DOUBLE_EQ(pid.update(2.0, 1.0), 3.0);
    EXPECT_DOUBLE_EQ(pid.update(2.0, 1.0), 5.0);
}

TEST(Pid, IntegratorAntiWindup)
{
    PidConfig cfg = unitGains();
    cfg.kp = 0.0;
    cfg.ki = 1.0;
    cfg.integratorMax = 2.5;
    PidController pid(cfg);
    for (int i = 0; i < 50; ++i)
        pid.update(10.0, 1.0);
    EXPECT_LE(pid.output(), 2.5 + 1e-12);
}

TEST(Pid, DerivativeRespondsToChange)
{
    PidConfig cfg = unitGains();
    cfg.kp = 0.0;
    cfg.kd = 1.0;
    PidController pid(cfg);
    // Error jumps from 0 to 5 over dt = 1: derivative ~ 5.
    EXPECT_NEAR(pid.update(5.0, 1.0), 5.0, 1e-9);
    // Constant error: derivative decays to 0.
    EXPECT_NEAR(pid.update(5.0, 1.0), 0.0, 1e-9);
}

TEST(Pid, DerivativeLowPassSmooths)
{
    PidConfig cfg = unitGains();
    cfg.kp = 0.0;
    cfg.kd = 1.0;
    cfg.derivativeTau = 1.0;
    PidController pid(cfg);
    const double first = pid.update(5.0, 1.0);
    // Filtered derivative is attenuated relative to the raw 5.0.
    EXPECT_LT(first, 5.0);
    EXPECT_GT(first, 0.0);
}

TEST(Pid, OutputClamped)
{
    PidConfig cfg = unitGains();
    cfg.outputMax = 1.5;
    cfg.outputMin = -0.5;
    PidController pid(cfg);
    EXPECT_DOUBLE_EQ(pid.update(100.0, 1.0), 1.5);
    EXPECT_DOUBLE_EQ(pid.update(-100.0, 1.0), -0.5);
}

TEST(Pid, ResetClearsState)
{
    PidController pid(unitGains());
    pid.update(5.0, 1.0);
    pid.reset();
    EXPECT_EQ(pid.output(), 0.0);
    EXPECT_EQ(pid.updates(), 0ul);
}

TEST(Pid, PaperGainsAreGentle)
{
    // Table 1 gains: tiny P/I, derivative-dominated. A steady error
    // of one second produces a sub-millisecond steady correction.
    PidController pid;
    double out = 0.0;
    for (int i = 0; i < 100; ++i)
        out = pid.update(1.0, 1.0);
    EXPECT_LT(std::abs(out), 1e-3);
}

TEST(Pid, ConvergesTrackingDecayingError)
{
    PidController pid(unitGains());
    double error = 8.0;
    for (int i = 0; i < 200; ++i) {
        const double correction = pid.update(error, 0.5);
        // Plant: correction reduces future error.
        error = 0.9 * error - 0.05 * correction;
    }
    EXPECT_NEAR(error, 0.0, 1e-3);
    EXPECT_NEAR(pid.output(), 0.0, 1e-2);
}

TEST(PidDeathTest, InvalidDtPanics)
{
    PidController pid;
    EXPECT_DEATH(pid.update(1.0, 0.0), "dt");
}

TEST(PidDeathTest, InvalidLimitsFatal)
{
    PidConfig bad;
    bad.outputMin = 10.0;
    bad.outputMax = -10.0;
    EXPECT_EXIT(PidController{bad}, ::testing::ExitedWithCode(1),
                "limits");
}

} // namespace
} // namespace core
} // namespace quetzal
