/**
 * @file
 * Tests for the task/option model.
 */

#include <gtest/gtest.h>

#include "core/task.hpp"

namespace quetzal {
namespace core {
namespace {

std::vector<DegradationOption>
twoOptions()
{
    DegradationOption high;
    high.name = "high";
    high.exeTicks = 1000;
    high.execPower = 20e-3;
    DegradationOption low;
    low.name = "low";
    low.exeTicks = 100;
    low.execPower = 10e-3;
    return {high, low};
}

TEST(Task, BasicProperties)
{
    Task task(3, "ml", twoOptions());
    EXPECT_EQ(task.id(), 3u);
    EXPECT_EQ(task.name(), "ml");
    EXPECT_EQ(task.optionCount(), 2u);
    EXPECT_TRUE(task.degradable());
    EXPECT_EQ(task.option(0).name, "high");
    EXPECT_EQ(task.option(1).name, "low");
}

TEST(Task, SingleOptionNotDegradable)
{
    auto options = twoOptions();
    options.resize(1);
    Task task(0, "fixed", options);
    EXPECT_FALSE(task.degradable());
}

TEST(Task, OptionEnergyAndSeconds)
{
    Task task(0, "ml", twoOptions());
    EXPECT_NEAR(task.option(0).energy(), 20e-3 * 1.0, 1e-12); // 20 mJ
    EXPECT_NEAR(task.option(1).energy(), 10e-3 * 0.1, 1e-12); // 1 mJ
    EXPECT_DOUBLE_EQ(task.option(0).exeSeconds(), 1.0);
}

TEST(Task, FastestOptionIndex)
{
    Task task(0, "ml", twoOptions());
    EXPECT_EQ(task.fastestOptionIndex(), 1u);
}

TEST(TaskDeathTest, EmptyOptionsFatal)
{
    EXPECT_EXIT(Task(0, "bad", {}), ::testing::ExitedWithCode(1),
                "at least one option");
}

TEST(TaskDeathTest, TooManyOptionsFatal)
{
    std::vector<DegradationOption> options;
    for (int i = 0; i < 5; ++i) {
        DegradationOption opt;
        opt.name = "o";
        opt.exeTicks = 10;
        opt.execPower = 1e-3;
        options.push_back(opt);
    }
    EXPECT_EXIT(Task(0, "bad", options), ::testing::ExitedWithCode(1),
                "degradation options");
}

TEST(TaskDeathTest, NonPositiveCostsFatal)
{
    auto options = twoOptions();
    options[0].exeTicks = 0;
    EXPECT_EXIT(Task(0, "bad", options), ::testing::ExitedWithCode(1),
                "latency");
    options = twoOptions();
    options[1].execPower = 0.0;
    EXPECT_EXIT(Task(0, "bad", options), ::testing::ExitedWithCode(1),
                "power");
}

TEST(TaskDeathTest, OptionIndexOutOfRangePanics)
{
    Task task(0, "ml", twoOptions());
    EXPECT_DEATH(task.option(2), "out of range");
}

} // namespace
} // namespace core
} // namespace quetzal
