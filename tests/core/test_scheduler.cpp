/**
 * @file
 * Tests for the Energy-aware SJF policy (paper Algorithm 1).
 */

#include <gtest/gtest.h>

#include "core/scheduler.hpp"
#include "core_test_fixtures.hpp"

namespace quetzal {
namespace core {
namespace {

using testing_fixtures::makeSmallSystem;
using testing_fixtures::pushInput;

TEST(EnergyAwareSjf, EmptyBufferGivesNothing)
{
    auto s = makeSmallSystem();
    queueing::InputBuffer buffer(10);
    EnergyAwareSjfPolicy policy;
    EnergyAwareEstimator exact(false);
    EXPECT_FALSE(policy.select(*s.system, buffer, exact,
                               {10e-3, 0}, 0.0)
                     .has_value());
}

TEST(EnergyAwareSjf, PicksShortestJobAtHighPower)
{
    auto s = makeSmallSystem();
    queueing::InputBuffer buffer(10);
    pushInput(buffer, s, 1, 100, s.classifyJob);
    pushInput(buffer, s, 2, 200, s.transmitJob);
    EnergyAwareSjfPolicy policy;
    EnergyAwareEstimator exact(false);
    // At 1 W everything is compute bound: ml-high 1.0 s vs
    // radio-high 0.8 s -> transmit wins.
    const auto decision =
        policy.select(*s.system, buffer, exact, {1.0, 255}, 0.0);
    ASSERT_TRUE(decision.has_value());
    EXPECT_EQ(decision->jobId, s.transmitJob);
    EXPECT_NEAR(decision->expectedServiceSeconds, 0.8, 1e-9);
}

TEST(EnergyAwareSjf, PowerFlipsTheWinner)
{
    auto s = makeSmallSystem();
    queueing::InputBuffer buffer(10);
    pushInput(buffer, s, 1, 100, s.classifyJob);
    pushInput(buffer, s, 2, 200, s.transmitJob);
    EnergyAwareSjfPolicy policy;
    EnergyAwareEstimator exact(false);
    // At 25 mW: ml-high stays compute-bound (1.0 s; 20 mJ needs only
    // 0.8 s of harvesting) while radio-high becomes energy-bound
    // (80 mJ -> 3.2 s): classify wins. Same buffer state, different
    // winner — the heart of *energy-aware* SJF.
    const auto decision =
        policy.select(*s.system, buffer, exact, {25e-3, 0}, 0.0);
    ASSERT_TRUE(decision.has_value());
    EXPECT_EQ(decision->jobId, s.classifyJob);
    EXPECT_NEAR(decision->expectedServiceSeconds, 1.0, 1e-9);
}

TEST(EnergyAwareSjf, TieBreaksTowardOlderInput)
{
    auto s = makeSmallSystem();
    // Make two jobs cost exactly the same: two classify-style jobs
    // over the same task.
    const JobId other = s.system->addJob("classify2", {s.mlTask});
    queueing::InputBuffer buffer(10);
    pushInput(buffer, s, 1, 500, other);
    pushInput(buffer, s, 2, 100, s.classifyJob); // older capture
    EnergyAwareSjfPolicy policy;
    EnergyAwareEstimator exact(false);
    const auto decision =
        policy.select(*s.system, buffer, exact, {1.0, 255}, 0.0);
    ASSERT_TRUE(decision.has_value());
    EXPECT_EQ(decision->jobId, s.classifyJob);
}

TEST(EnergyAwareSjf, SelectsOldestInputOfChosenJob)
{
    auto s = makeSmallSystem();
    queueing::InputBuffer buffer(10);
    pushInput(buffer, s, 1, 300, s.classifyJob);
    pushInput(buffer, s, 2, 100, s.classifyJob);
    EnergyAwareSjfPolicy policy;
    EnergyAwareEstimator exact(false);
    const auto decision =
        policy.select(*s.system, buffer, exact, {1.0, 255}, 0.0);
    ASSERT_TRUE(decision.has_value());
    // oldestSlotForJob returns the first (oldest-enqueued) entry.
    EXPECT_EQ(buffer.record(decision->slot).id, 1u);
}

TEST(EnergyAwareSjf, PidCorrectionAddsUniformly)
{
    auto s = makeSmallSystem();
    queueing::InputBuffer buffer(10);
    pushInput(buffer, s, 1, 100, s.classifyJob);
    EnergyAwareSjfPolicy policy;
    EnergyAwareEstimator exact(false);
    const auto base =
        policy.select(*s.system, buffer, exact, {1.0, 255}, 0.0);
    const auto corrected =
        policy.select(*s.system, buffer, exact, {1.0, 255}, 2.5);
    ASSERT_TRUE(base && corrected);
    EXPECT_NEAR(corrected->expectedServiceSeconds,
                base->expectedServiceSeconds + 2.5, 1e-9);
}

TEST(EnergyAwareSjf, NegativeCorrectionClampsAtZero)
{
    auto s = makeSmallSystem();
    queueing::InputBuffer buffer(10);
    pushInput(buffer, s, 1, 100, s.classifyJob);
    EnergyAwareSjfPolicy policy;
    EnergyAwareEstimator exact(false);
    const auto decision =
        policy.select(*s.system, buffer, exact, {1.0, 255}, -100.0);
    ASSERT_TRUE(decision.has_value());
    EXPECT_GE(decision->expectedServiceSeconds, 0.0);
}

TEST(EnergyAwareSjf, SkipsInFlightInputs)
{
    auto s = makeSmallSystem();
    queueing::InputBuffer buffer(10);
    pushInput(buffer, s, 1, 100, s.classifyJob);
    buffer.markInFlight(*buffer.oldestSlotForJob(s.classifyJob));
    EnergyAwareSjfPolicy policy;
    EnergyAwareEstimator exact(false);
    EXPECT_FALSE(policy.select(*s.system, buffer, exact, {1.0, 255},
                               0.0)
                     .has_value());
}

} // namespace
} // namespace core
} // namespace quetzal
