/**
 * @file
 * Tests for the IBO-detection and reaction engine (paper Algorithm 2
 * with the backlog-drain horizon, DESIGN.md section 4).
 */

#include <gtest/gtest.h>

#include "core/ibo_engine.hpp"
#include "core_test_fixtures.hpp"

namespace quetzal {
namespace core {
namespace {

using testing_fixtures::makeSmallSystem;
using testing_fixtures::pushInput;

/** Fill the arrival tracker to a steady rate of `stored` per capture. */
void
primeArrivals(TaskSystem &system, double rate, int periods = 64)
{
    for (int i = 0; i < periods; ++i) {
        const bool stored =
            (static_cast<double>(i % 100) / 100.0) < rate;
        system.recordCapture(stored);
    }
}

TEST(IboEngine, NoPressureKeepsFullQuality)
{
    auto s = makeSmallSystem();
    primeArrivals(*s.system, 0.1);
    queueing::InputBuffer buffer(10);
    pushInput(buffer, s, 1, 0, s.classifyJob);
    IboReactionEngine engine;
    EnergyAwareEstimator exact(false);
    const auto decision =
        engine.adapt(*s.system, s.system->job(s.classifyJob), buffer,
                     exact, {1.0, 255}, 0.0);
    EXPECT_FALSE(decision.iboPredicted);
    EXPECT_FALSE(decision.degraded);
    EXPECT_EQ(decision.optionPerTask, std::vector<std::size_t>{0});
    EXPECT_TRUE(decision.overflowAvoided);
}

TEST(IboEngine, UnsustainableRateForcesDegradation)
{
    auto s = makeSmallSystem();
    // Every capture stored: lambda = 1/s.
    primeArrivals(*s.system, 1.0);
    queueing::InputBuffer buffer(10);
    // A backlog of transmit inputs at 10 mW: radio-high needs
    // 80 mJ -> 8 s each; rho >> 1 at full quality. radio-low is
    // 0.5 s each: drain horizon 4 s < headroom 6 -> avoids.
    for (std::uint64_t i = 0; i < 4; ++i)
        pushInput(buffer, s, i, 0, s.transmitJob);
    IboReactionEngine engine;
    EnergyAwareEstimator exact(false);
    const auto decision =
        engine.adapt(*s.system, s.system->job(s.transmitJob), buffer,
                     exact, {10e-3, 0}, 0.0);
    EXPECT_TRUE(decision.iboPredicted);
    EXPECT_TRUE(decision.degraded);
    // radio-low: 5 mJ -> 0.5 s at 10 mW: sustainable, so it avoids.
    EXPECT_EQ(decision.optionPerTask, std::vector<std::size_t>{1});
    EXPECT_TRUE(decision.overflowAvoided);
}

TEST(IboEngine, PicksHighestQualityOptionThatAvoids)
{
    auto s = makeSmallSystem();
    primeArrivals(*s.system, 1.0);
    queueing::InputBuffer buffer(10);
    pushInput(buffer, s, 1, 0, s.transmitJob);
    IboReactionEngine engine;
    EnergyAwareEstimator exact(false);
    // At 1 W even radio-high is compute-bound (0.8 s < 1 s arrival
    // period): full quality already avoids -> no degradation.
    const auto decision =
        engine.adapt(*s.system, s.system->job(s.transmitJob), buffer,
                     exact, {1.0, 255}, 0.0);
    EXPECT_FALSE(decision.degraded);
    EXPECT_TRUE(decision.overflowAvoided);
}

TEST(IboEngine, FullBufferAlwaysPredicts)
{
    auto s = makeSmallSystem();
    primeArrivals(*s.system, 0.05); // nearly idle lambda
    queueing::InputBuffer buffer(3);
    for (std::uint64_t i = 0; i < 3; ++i)
        pushInput(buffer, s, i, 0, s.classifyJob);
    ASSERT_TRUE(buffer.full());
    IboReactionEngine engine;
    EnergyAwareEstimator exact(false);
    const auto decision =
        engine.adapt(*s.system, s.system->job(s.classifyJob), buffer,
                     exact, {1.0, 255}, 0.0);
    // Headroom zero: overflow predicted regardless of lambda, and no
    // option can avoid it -> fastest option chosen.
    EXPECT_TRUE(decision.iboPredicted);
    EXPECT_FALSE(decision.overflowAvoided);
    EXPECT_EQ(decision.optionPerTask, std::vector<std::size_t>{1});
}

TEST(IboEngine, FallbackPicksFastestWhenNothingAvoids)
{
    auto s = makeSmallSystem();
    primeArrivals(*s.system, 1.0);
    queueing::InputBuffer buffer(4);
    for (std::uint64_t i = 0; i < 4; ++i)
        pushInput(buffer, s, i, 0, s.transmitJob);
    IboReactionEngine engine;
    EnergyAwareEstimator exact(false);
    // At 1 mW even radio-low (5 mJ -> 5 s) cannot keep up with
    // 1 arrival/s: nothing avoids, fastest option is still chosen.
    const auto decision =
        engine.adapt(*s.system, s.system->job(s.transmitJob), buffer,
                     exact, {1e-3, 0}, 0.0);
    EXPECT_TRUE(decision.iboPredicted);
    EXPECT_FALSE(decision.overflowAvoided);
    EXPECT_EQ(decision.optionPerTask, std::vector<std::size_t>{1});
}

TEST(IboEngine, RemembersOtherTasksQuality)
{
    auto s = makeSmallSystem();
    primeArrivals(*s.system, 1.0);
    queueing::InputBuffer buffer(10);
    for (std::uint64_t i = 0; i < 3; ++i)
        pushInput(buffer, s, i, 0, s.transmitJob);
    pushInput(buffer, s, 10, 0, s.classifyJob);
    IboReactionEngine engine;
    EnergyAwareEstimator exact(false);
    const PowerReading power{40e-3, 0};

    // First, the transmit decision degrades the radio (radio-high is
    // 2 s per entry at 40 mW: rho > 1).
    const auto radioDecision =
        engine.adapt(*s.system, s.system->job(s.transmitJob), buffer,
                     exact, power, 0.0);
    ASSERT_TRUE(radioDecision.degraded);

    // Now the classify decision prices the transmit backlog at the
    // degraded radio quality: ml-high (0.5 s at 40 mW) plus 3
    // radio-low (0.125 s each) drains fast, so ML stays full quality.
    const auto mlDecision =
        engine.adapt(*s.system, s.system->job(s.classifyJob), buffer,
                     exact, power, 0.0);
    EXPECT_FALSE(mlDecision.degraded);
}

TEST(IboEngine, RecoversQualityWhenPressureClears)
{
    auto s = makeSmallSystem();
    primeArrivals(*s.system, 1.0);
    queueing::InputBuffer buffer(10);
    for (std::uint64_t i = 0; i < 5; ++i)
        pushInput(buffer, s, i, 0, s.transmitJob);
    IboReactionEngine engine;
    EnergyAwareEstimator exact(false);
    // Degrade under pressure at 10 mW...
    const auto pressured =
        engine.adapt(*s.system, s.system->job(s.transmitJob), buffer,
                     exact, {10e-3, 0}, 0.0);
    EXPECT_TRUE(pressured.degraded);
    // ...then power returns and the backlog clears: full quality again.
    queueing::InputBuffer calm(10);
    pushInput(calm, s, 99, 0, s.transmitJob);
    const auto recovered =
        engine.adapt(*s.system, s.system->job(s.transmitJob), calm,
                     exact, {1.0, 255}, 0.0);
    EXPECT_FALSE(recovered.degraded);
}

TEST(IboEngine, NonDegradableJobDetectsOnly)
{
    auto s = makeSmallSystem();
    const TaskId fixed = s.system->addTask("fixed", {{"only", 500,
                                                      10e-3}});
    const JobId fixedJob = s.system->addJob("fixed-job", {fixed});
    primeArrivals(*s.system, 1.0);
    queueing::InputBuffer buffer(2);
    pushInput(buffer, s, 1, 0, fixedJob);
    pushInput(buffer, s, 2, 0, fixedJob);
    IboReactionEngine engine;
    EnergyAwareEstimator exact(false);
    const auto decision =
        engine.adapt(*s.system, s.system->job(fixedJob), buffer, exact,
                     {1e-3, 0}, 0.0);
    EXPECT_TRUE(decision.iboPredicted);
    EXPECT_FALSE(decision.degraded);
    EXPECT_FALSE(decision.overflowAvoided);
}

} // namespace
} // namespace core
} // namespace quetzal
