/**
 * @file
 * Tests for the Controller glue: selection pipeline, feedback loops,
 * PID wiring and statistics.
 */

#include <gtest/gtest.h>

#include "core/runtime.hpp"
#include "core_test_fixtures.hpp"

namespace quetzal {
namespace core {
namespace {

using testing_fixtures::makeSmallSystem;
using testing_fixtures::pushInput;

TEST(Controller, QuetzalFactoryAssemblesPieces)
{
    auto controller = makeQuetzalController();
    EXPECT_EQ(controller->name(), "Quetzal");
    EXPECT_EQ(controller->scheduler().name(), "energy-aware-sjf");
    EXPECT_EQ(controller->adaptation().name(), "ibo-engine");
    EXPECT_EQ(controller->estimator().name(), "energy-aware(circuit)");
    EXPECT_EQ(controller->pidCorrection(), 0.0);
}

TEST(Controller, SelectReturnsNothingOnEmptyBuffer)
{
    auto s = makeSmallSystem();
    auto controller = makeQuetzalController();
    queueing::InputBuffer buffer(10);
    EXPECT_FALSE(
        controller->selectJob(*s.system, buffer, 10e-3).has_value());
    EXPECT_EQ(controller->stats().invocations, 1u);
}

TEST(Controller, SelectionCarriesOptions)
{
    auto s = makeSmallSystem();
    QuetzalOptions options;
    options.useCircuit = false;
    auto controller = makeQuetzalController(options);
    queueing::InputBuffer buffer(10);
    pushInput(buffer, s, 1, 0, s.classifyJob);
    const auto selection =
        controller->selectJob(*s.system, buffer, 1.0);
    ASSERT_TRUE(selection.has_value());
    EXPECT_EQ(selection->jobId, s.classifyJob);
    ASSERT_EQ(selection->optionPerTask.size(), 1u);
    EXPECT_GT(selection->predictedServiceSeconds, 0.0);
}

TEST(Controller, CompletionFeedsProbabilityTrackers)
{
    auto s = makeSmallSystem();
    auto controller = makeQuetzalController();
    queueing::InputBuffer buffer(10);
    pushInput(buffer, s, 1, 0, s.classifyJob);
    const auto selection =
        controller->selectJob(*s.system, buffer, 10e-3);
    ASSERT_TRUE(selection.has_value());
    controller->onJobComplete(*s.system, *selection, {false}, 1.0);
    EXPECT_DOUBLE_EQ(s.system->executionProbability(s.mlTask), 0.0);
    EXPECT_EQ(controller->stats().jobsCompleted, 1u);
}

TEST(Controller, PidRespondsToPredictionError)
{
    auto s = makeSmallSystem();
    QuetzalOptions options;
    options.useCircuit = false;
    // Crank the gains so the effect is visible in a couple of steps.
    options.pidConfig.kp = 0.5;
    options.pidConfig.ki = 0.0;
    options.pidConfig.kd = 0.0;
    auto controller = makeQuetzalController(options);

    queueing::InputBuffer buffer(10);
    pushInput(buffer, s, 1, 0, s.classifyJob);
    const auto selection =
        controller->selectJob(*s.system, buffer, 1.0);
    ASSERT_TRUE(selection.has_value());
    // Job took 10 s longer than predicted: the correction inflates.
    controller->onJobComplete(
        *s.system, *selection, {true},
        selection->predictedServiceSeconds + 10.0);
    EXPECT_NEAR(controller->pidCorrection(), 5.0, 1e-9);
    EXPECT_EQ(controller->stats().predictionError.count(), 1u);
    EXPECT_NEAR(controller->stats().predictionError.mean(), 10.0,
                1e-9);
}

TEST(Controller, NoPidMeansZeroCorrection)
{
    auto s = makeSmallSystem();
    QuetzalOptions options;
    options.usePid = false;
    auto controller = makeQuetzalController(options);
    queueing::InputBuffer buffer(10);
    pushInput(buffer, s, 1, 0, s.classifyJob);
    const auto selection =
        controller->selectJob(*s.system, buffer, 10e-3);
    ASSERT_TRUE(selection.has_value());
    controller->onJobComplete(*s.system, *selection, {true}, 100.0);
    EXPECT_EQ(controller->pidCorrection(), 0.0);
}

TEST(Controller, TaskObservationsFeedAverageEstimator)
{
    auto s = makeSmallSystem();
    auto controller = std::make_unique<Controller>(
        "avg", std::make_unique<EnergyAwareSjfPolicy>(),
        std::make_unique<IboReactionEngine>(),
        std::make_unique<AverageServiceTimeEstimator>());
    controller->onTaskComplete(*s.system, s.mlTask, 0, 7.0);
    const auto &avg = static_cast<AverageServiceTimeEstimator &>(
        controller->estimator());
    EXPECT_EQ(
        avg.observationCount(s.system->task(s.mlTask).option(0)), 1u);
}

TEST(Controller, DegradationCountsInStats)
{
    auto s = makeSmallSystem();
    QuetzalOptions options;
    options.useCircuit = false;
    options.usePid = false;
    auto controller = makeQuetzalController(options);
    // High lambda + heavy transmit backlog at low power: must degrade.
    for (int i = 0; i < 64; ++i)
        s.system->recordCapture(true);
    queueing::InputBuffer buffer(10);
    for (std::uint64_t i = 0; i < 4; ++i)
        pushInput(buffer, s, i, 0, s.transmitJob);
    const auto selection =
        controller->selectJob(*s.system, buffer, 10e-3);
    ASSERT_TRUE(selection.has_value());
    EXPECT_TRUE(selection->degraded);
    EXPECT_EQ(controller->stats().degradedJobs, 1u);
    EXPECT_EQ(controller->stats().iboPredictions, 1u);
}

TEST(ControllerDeathTest, MissingCollaboratorsFatal)
{
    EXPECT_EXIT(Controller("broken", nullptr, nullptr, nullptr),
                ::testing::ExitedWithCode(1), "requires");
}

} // namespace
} // namespace core
} // namespace quetzal
