/**
 * @file
 * Property suite for the prediction-error PID loop (paper section
 * 4.3), driven by the fault layer's seeded disturbance signals
 * (fault::disturbanceSamples) instead of hand-written literals: each
 * property is checked over a family of step / ramp / noise inputs.
 *
 * The closed loop under test is the estimator's: the controller's
 * output inflates the next E[S] prediction, so with disturbance d_k
 * on the observed service time the tracking error is
 * e_k = d_k - u_{k-1}.
 */

#include <cmath>
#include <cstdlib>
#include <vector>

#include <gtest/gtest.h>

#include "core/pid.hpp"
#include "fault/disturbance.hpp"

namespace quetzal {
namespace core {
namespace {

/** Gains tuned for fast test-scale convergence, symmetric limits. */
PidConfig
testConfig()
{
    PidConfig cfg;
    cfg.kp = 0.4;
    cfg.ki = 0.3;
    cfg.kd = 0.0;
    cfg.outputMin = -50.0;
    cfg.outputMax = 50.0;
    cfg.integratorMin = -50.0;
    cfg.integratorMax = 50.0;
    return cfg;
}

/**
 * Run the estimator loop against a disturbance signal; returns the
 * error trajectory. dt = 1 s per job.
 */
std::vector<double>
closedLoopErrors(PidController &pid, const std::vector<double> &dist)
{
    std::vector<double> errors;
    errors.reserve(dist.size());
    double correction = 0.0;
    for (const double d : dist) {
        const double error = d - correction;
        errors.push_back(error);
        correction = pid.update(error, 1.0);
    }
    return errors;
}

TEST(PidProperties, ZeroErrorHoldsZeroOutput)
{
    PidController pid(testConfig());
    for (int k = 0; k < 100; ++k)
        pid.update(0.0, 1.0);
    EXPECT_EQ(pid.output(), 0.0);
    EXPECT_EQ(pid.updates(), 100ul);
}

TEST(PidProperties, SignCorrectForStepFamilies)
{
    // Underprediction (positive error) must inflate; overprediction
    // must deflate — for every step amplitude tried.
    for (const double amplitude : {0.5, 2.0, 7.5, -0.5, -2.0, -7.5}) {
        fault::Disturbance step;
        step.shape = fault::DisturbanceShape::Step;
        step.amplitude = amplitude;
        step.startIndex = 3;
        const auto signal = fault::disturbanceSamples(step, 20);

        PidController pid(testConfig());
        closedLoopErrors(pid, signal);
        if (amplitude > 0.0)
            EXPECT_GT(pid.output(), 0.0) << "amplitude " << amplitude;
        else
            EXPECT_LT(pid.output(), 0.0) << "amplitude " << amplitude;
    }
}

TEST(PidProperties, SymmetricLimitsGiveAntisymmetricResponse)
{
    fault::Disturbance step;
    step.shape = fault::DisturbanceShape::Step;
    step.amplitude = 3.0;
    const auto plus = fault::disturbanceSamples(step, 40);
    step.amplitude = -3.0;
    const auto minus = fault::disturbanceSamples(step, 40);

    PidController pidPlus(testConfig());
    PidController pidMinus(testConfig());
    const auto errPlus = closedLoopErrors(pidPlus, plus);
    const auto errMinus = closedLoopErrors(pidMinus, minus);
    for (std::size_t k = 0; k < errPlus.size(); ++k)
        ASSERT_NEAR(errPlus[k], -errMinus[k], 1e-12) << "sample " << k;
}

TEST(PidProperties, ConvergesOnStepDisturbance)
{
    for (const double amplitude : {1.0, 4.0, -2.5}) {
        fault::Disturbance step;
        step.shape = fault::DisturbanceShape::Step;
        step.amplitude = amplitude;
        const auto signal = fault::disturbanceSamples(step, 120);

        PidController pid(testConfig());
        const auto errors = closedLoopErrors(pid, signal);
        // Steady state: the integrator has absorbed the bias.
        for (std::size_t k = errors.size() - 10; k < errors.size(); ++k)
            ASSERT_NEAR(errors[k], 0.0, 0.02 * std::abs(amplitude))
                << "amplitude " << amplitude << " sample " << k;
        EXPECT_NEAR(pid.output(), amplitude,
                    0.02 * std::abs(amplitude));
    }
}

TEST(PidProperties, TracksRampWithBoundedLag)
{
    fault::Disturbance ramp;
    ramp.shape = fault::DisturbanceShape::Ramp;
    ramp.amplitude = 10.0;
    ramp.rampLength = 200;
    const auto signal = fault::disturbanceSamples(ramp, 200);

    PidController pid(testConfig());
    const auto errors = closedLoopErrors(pid, signal);
    // A PI loop tracks a ramp with finite steady-state lag; the slope
    // here is 0.05/sample, so the lag must settle well under one
    // sample's worth of amplitude.
    for (std::size_t k = 100; k < errors.size(); ++k)
        ASSERT_LT(std::abs(errors[k]), 0.2) << "sample " << k;
}

TEST(PidProperties, NoiseRejectionKeepsOutputNearZeroMean)
{
    for (const std::uint64_t seed : {1ull, 7ull, 42ull}) {
        fault::Disturbance noise;
        noise.shape = fault::DisturbanceShape::Noise;
        noise.amplitude = 0.5;
        noise.seed = seed;
        const auto signal = fault::disturbanceSamples(noise, 500);

        PidController pid(testConfig());
        closedLoopErrors(pid, signal);
        // Zero-mean noise must not wind the loop up to a large
        // standing correction.
        EXPECT_LT(std::abs(pid.output()), 1.0) << "seed " << seed;
    }
}

TEST(PidProperties, OutputAlwaysInsideConfiguredLimits)
{
    PidConfig cfg = testConfig();
    cfg.outputMin = -2.0;
    cfg.outputMax = 3.0;
    PidController pid(cfg);
    fault::Disturbance noise;
    noise.shape = fault::DisturbanceShape::Noise;
    noise.amplitude = 50.0; // violently larger than the limits
    noise.seed = 9;
    for (const double d : fault::disturbanceSamples(noise, 300)) {
        const double out = pid.update(d, 1.0);
        ASSERT_GE(out, cfg.outputMin);
        ASSERT_LE(out, cfg.outputMax);
    }
}

TEST(PidProperties, AntiWindupRecoversQuicklyAfterSaturation)
{
    PidConfig cfg = testConfig();
    cfg.kp = 1.0;
    cfg.ki = 1.0;
    cfg.outputMax = 5.0;
    cfg.outputMin = -5.0;
    cfg.integratorMax = 6.0;
    cfg.integratorMin = -6.0;
    PidController pid(cfg);

    // Drive deep into saturation for a long time...
    for (int k = 0; k < 200; ++k)
        EXPECT_LE(pid.update(100.0, 1.0), cfg.outputMax);
    EXPECT_EQ(pid.output(), cfg.outputMax);

    // ...then reverse. A clamped integrator must let the output come
    // off the rail within a handful of samples, not hundreds.
    int stepsToLeaveRail = 0;
    while (pid.update(-10.0, 1.0) >= cfg.outputMax &&
           stepsToLeaveRail < 50)
        ++stepsToLeaveRail;
    EXPECT_LT(stepsToLeaveRail, 5);
}

TEST(PidProperties, DerivativeFiltersStepKick)
{
    PidConfig cfg = testConfig();
    cfg.kp = 0.0;
    cfg.ki = 0.0;
    cfg.kd = 2.0;
    cfg.derivativeTau = 4.0;
    PidController pid(cfg);
    // Pure filtered-D on a step: an initial kick that decays toward
    // zero as the low-pass forgets the edge.
    const double kick = pid.update(1.0, 1.0);
    EXPECT_GT(kick, 0.0);
    double previous = kick;
    for (int k = 0; k < 30; ++k) {
        const double out = pid.update(1.0, 1.0);
        ASSERT_LE(out, previous + 1e-12) << "sample " << k;
        previous = out;
    }
    EXPECT_LT(previous, 0.05 * kick);
}

TEST(PidProperties, ResetRestoresInitialState)
{
    PidController pid(testConfig());
    fault::Disturbance noise;
    noise.shape = fault::DisturbanceShape::Noise;
    noise.amplitude = 2.0;
    noise.seed = 3;
    const auto signal = fault::disturbanceSamples(noise, 50);
    for (const double d : signal)
        pid.update(d, 1.0);
    ASSERT_NE(pid.output(), 0.0);

    pid.reset();
    EXPECT_EQ(pid.output(), 0.0);
    EXPECT_EQ(pid.updates(), 0ul);

    // Post-reset trajectory is identical to a fresh controller's.
    PidController fresh(testConfig());
    for (const double d : signal)
        ASSERT_DOUBLE_EQ(pid.update(d, 1.0), fresh.update(d, 1.0));
}

TEST(PidProperties, PaperGainsCorrectInjectedEstimatorBias)
{
    // The fault subsystem's measurement bias shows up to the runtime
    // as a systematic service under-prediction; with the paper's
    // Table 1 gains the loop must absorb most of a 2 s bias within a
    // few hundred jobs (section 4.3's measurable job).
    PidConfig cfg; // paper defaults
    PidController pid(cfg);
    fault::Disturbance step;
    step.shape = fault::DisturbanceShape::Step;
    step.amplitude = 2.0;
    const auto signal = fault::disturbanceSamples(step, 400);
    const auto errors = closedLoopErrors(pid, signal);
    EXPECT_GT(pid.output(), 0.0);
    // The integral term works on the slow timescale of the paper's
    // gains; require visible progress, not full convergence.
    EXPECT_LT(errors.back(), errors.front());
}

} // namespace
} // namespace core
} // namespace quetzal
