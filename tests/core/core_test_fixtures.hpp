/**
 * @file
 * Shared fixtures for the core-module tests: a small two-job system
 * mirroring the person-detection shape (classify spawns transmit),
 * with costs chosen to make expected values easy to verify by hand.
 */

#ifndef QUETZAL_TESTS_CORE_TEST_FIXTURES_HPP
#define QUETZAL_TESTS_CORE_TEST_FIXTURES_HPP

#include <memory>

#include "core/system.hpp"
#include "queueing/input_buffer.hpp"

namespace quetzal {
namespace core {
namespace testing_fixtures {

/** Ids of the small reference system. */
struct SmallSystem
{
    std::unique_ptr<TaskSystem> system;
    TaskId mlTask = 0;
    TaskId radioTask = 0;
    JobId classifyJob = 0;
    JobId transmitJob = 0;
};

/**
 * Build the reference system:
 *  ml-task:    high = 1000 ticks @ 20 mW (20 mJ),
 *              low  =  100 ticks @ 10 mW (1 mJ)
 *  radio-task: high =  800 ticks @ 100 mW (80 mJ),
 *              low  =   50 ticks @ 100 mW (5 mJ)
 *  classify = [ml-task] -> transmit on positive
 *  transmit = [radio-task]
 */
inline SmallSystem
makeSmallSystem(const SystemConfig &config = {})
{
    SmallSystem s;
    s.system = std::make_unique<TaskSystem>(config);
    s.mlTask = s.system->addTask(
        "ml-task", {{"ml-high", 1000, 20e-3}, {"ml-low", 100, 10e-3}});
    s.radioTask = s.system->addTask(
        "radio-task",
        {{"radio-high", 800, 100e-3}, {"radio-low", 50, 100e-3}});
    s.transmitJob = s.system->addJob("transmit", {s.radioTask});
    s.classifyJob = s.system->addJob("classify", {s.mlTask},
                                     s.transmitJob);
    return s;
}

/** Push a classify-stage input with the given id/capture time. */
inline void
pushInput(queueing::InputBuffer &buffer, const SmallSystem &s,
          std::uint64_t id, Tick captureTick, JobId job,
          bool interesting = true)
{
    (void)s;
    queueing::InputRecord record;
    record.id = id;
    record.captureTick = captureTick;
    record.enqueueTick = captureTick;
    record.jobId = job;
    record.interesting = interesting;
    buffer.tryPush(record);
}

} // namespace testing_fixtures
} // namespace core
} // namespace quetzal

#endif // QUETZAL_TESTS_CORE_TEST_FIXTURES_HPP
