/**
 * @file
 * Tests for the service-time estimators: Eq. (1) scaling and the
 * power-blind averaging baseline.
 */

#include <gtest/gtest.h>

#include "core/service_time.hpp"
#include "core/system.hpp"

namespace quetzal {
namespace core {
namespace {

DegradationOption
makeOption(Tick exeTicks, Watts power, std::uint8_t code)
{
    DegradationOption opt;
    opt.name = "opt";
    opt.exeTicks = exeTicks;
    opt.execPower = power;
    opt.hwProfile = hw::RatioEngine::makeProfile(exeTicks, code);
    return opt;
}

TEST(EnergyAwareEstimator, ExactComputeBound)
{
    EnergyAwareEstimator exact(false);
    const auto opt = makeOption(500, 10e-3, 150);
    // Input power above execution power: latency only.
    EXPECT_DOUBLE_EQ(exact.estimate(opt, {20e-3, 0}), 0.5);
}

TEST(EnergyAwareEstimator, ExactEnergyBound)
{
    EnergyAwareEstimator exact(false);
    const auto opt = makeOption(500, 10e-3, 150);
    // 5 mJ at 1 mW: 5 seconds.
    EXPECT_DOUBLE_EQ(exact.estimate(opt, {1e-3, 0}), 5.0);
}

TEST(EnergyAwareEstimator, ExactZeroPowerIsHuge)
{
    EnergyAwareEstimator exact(false);
    const auto opt = makeOption(500, 10e-3, 150);
    EXPECT_GE(exact.estimate(opt, {0.0, 0}), 1e8);
}

TEST(EnergyAwareEstimator, CircuitPathUsesCodes)
{
    EnergyAwareEstimator circuit(true);
    const auto opt = makeOption(500, 10e-3, 150);
    // delta 8 -> ratio 2.
    EXPECT_DOUBLE_EQ(circuit.estimate(opt, {0.0, 142}), 1.0);
    // delta 0 / input above: latency.
    EXPECT_DOUBLE_EQ(circuit.estimate(opt, {0.0, 150}), 0.5);
    EXPECT_DOUBLE_EQ(circuit.estimate(opt, {0.0, 200}), 0.5);
}

TEST(EnergyAwareEstimator, Names)
{
    EXPECT_EQ(EnergyAwareEstimator(true).name(),
              "energy-aware(circuit)");
    EXPECT_EQ(EnergyAwareEstimator(false).name(),
              "energy-aware(exact)");
}

TEST(AverageEstimator, FallsBackToLatency)
{
    AverageServiceTimeEstimator avg;
    const auto opt = makeOption(500, 10e-3, 150);
    EXPECT_DOUBLE_EQ(avg.estimate(opt, {1e-3, 0}), 0.5);
}

TEST(AverageEstimator, UsesObservedMean)
{
    AverageServiceTimeEstimator avg;
    const auto opt = makeOption(500, 10e-3, 150);
    avg.recordObservation(opt, 2.0);
    avg.recordObservation(opt, 4.0);
    EXPECT_EQ(avg.observationCount(opt), 2u);
    EXPECT_DOUBLE_EQ(avg.estimate(opt, {1e-3, 0}), 3.0);
}

TEST(AverageEstimator, BlindToPower)
{
    AverageServiceTimeEstimator avg;
    const auto opt = makeOption(500, 10e-3, 150);
    avg.recordObservation(opt, 7.0);
    // Identical estimates regardless of input power: the flaw the
    // paper's section 7.3 sensitivity study demonstrates.
    EXPECT_DOUBLE_EQ(avg.estimate(opt, {1e-6, 0}),
                     avg.estimate(opt, {1.0, 255}));
}

TEST(AverageEstimator, DistinctOptionsTrackedSeparately)
{
    AverageServiceTimeEstimator avg;
    const auto high = makeOption(500, 10e-3, 150);
    const auto low = makeOption(100, 5e-3, 140);
    avg.recordObservation(high, 9.0);
    EXPECT_DOUBLE_EQ(avg.estimate(low, {1e-3, 0}), 0.1);
    EXPECT_EQ(avg.observationCount(low), 0u);
}

} // namespace
} // namespace core
} // namespace quetzal
