/**
 * @file
 * Conformance tests for the M/D/1/K queueing oracle: the closed-form
 * prediction (embedded-chain algebra, DESIGN.md section 12.4) is
 * checked against seeded event-driven simulations over the *real*
 * queueing::InputBuffer, across a (lambda, E[S], K) grid and both
 * service orders. Known closed forms (Erlang loss at K=1, light and
 * saturated limits) pin the algebra independently of the simulation.
 */

#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "queueing/oracle.hpp"

namespace quetzal {
namespace queueing {
namespace {

/** One grid cell of the conformance sweep. */
struct GridCase
{
    double lambda;
    double service;
    std::size_t capacity;
};

class OracleConformance : public ::testing::TestWithParam<GridCase>
{
  protected:
    static QueueSimConfig
    simConfig(const GridCase &cell, QueueDiscipline discipline)
    {
        QueueSimConfig cfg;
        cfg.model.arrivalsPerSecond = cell.lambda;
        cfg.model.serviceSeconds = cell.service;
        cfg.model.capacity = cell.capacity;
        cfg.discipline = discipline;
        cfg.seed = 0x0c0ffee5u + cell.capacity;
        cfg.horizonSeconds = 200000.0 * cell.service;
        cfg.warmupSeconds = 500.0 * cell.service;
        return cfg;
    }
};

TEST_P(OracleConformance, PredictionMatchesFcfsSimulation)
{
    const GridCase cell = GetParam();
    OracleInput in;
    in.arrivalsPerSecond = cell.lambda;
    in.serviceSeconds = cell.service;
    in.capacity = cell.capacity;
    const OraclePrediction pred = predictOccupancy(in);
    const QueueSimResult sim =
        simulateQueue(simConfig(cell, QueueDiscipline::Fcfs));

    EXPECT_NEAR(sim.meanOccupancy, pred.expectedOccupancy,
                std::max(0.05, 0.03 * pred.expectedOccupancy));
    EXPECT_NEAR(sim.dropFraction, pred.blockingProbability,
                std::max(0.004, 0.05 * pred.blockingProbability));
    if (sim.served > 0) {
        EXPECT_NEAR(sim.meanSojournSeconds, pred.expectedSojournSeconds,
                    std::max(0.05 * cell.service,
                             0.05 * pred.expectedSojournSeconds));
    }
}

TEST_P(OracleConformance, OccupancyDistributionMatchesTimeShares)
{
    const GridCase cell = GetParam();
    OracleInput in;
    in.arrivalsPerSecond = cell.lambda;
    in.serviceSeconds = cell.service;
    in.capacity = cell.capacity;
    const OraclePrediction pred = predictOccupancy(in);
    const QueueSimResult sim =
        simulateQueue(simConfig(cell, QueueDiscipline::Fcfs));

    ASSERT_EQ(pred.occupancyDistribution.size(), cell.capacity + 1);
    ASSERT_EQ(sim.occupancyTimeFraction.size(), cell.capacity + 1);
    for (std::size_t j = 0; j <= cell.capacity; ++j) {
        ASSERT_NEAR(sim.occupancyTimeFraction[j],
                    pred.occupancyDistribution[j], 0.02)
            << "occupancy " << j;
    }
}

TEST_P(OracleConformance, LcfsOccupancyLawEqualsFcfs)
{
    // Service order cannot change the queue-length process when the
    // server never idles with work present and services are iid —
    // with the same seed (same arrival draws) the occupancy path is
    // *identical*, not merely statistically equal.
    const GridCase cell = GetParam();
    const QueueSimResult fcfs =
        simulateQueue(simConfig(cell, QueueDiscipline::Fcfs));
    const QueueSimResult lcfs =
        simulateQueue(simConfig(cell, QueueDiscipline::Lcfs));

    EXPECT_EQ(fcfs.arrivals, lcfs.arrivals);
    EXPECT_EQ(fcfs.drops, lcfs.drops);
    EXPECT_EQ(fcfs.served, lcfs.served);
    EXPECT_DOUBLE_EQ(fcfs.meanOccupancy, lcfs.meanOccupancy);
    for (std::size_t j = 0; j <= cell.capacity; ++j)
        ASSERT_DOUBLE_EQ(fcfs.occupancyTimeFraction[j],
                         lcfs.occupancyTimeFraction[j])
            << "occupancy " << j;
}

TEST_P(OracleConformance, LittlesLawHoldsInSimulation)
{
    const GridCase cell = GetParam();
    const QueueSimResult sim =
        simulateQueue(simConfig(cell, QueueDiscipline::Fcfs));
    if (sim.served == 0)
        GTEST_SKIP() << "no departures measured";
    const double effLambda =
        cell.lambda * (1.0 - sim.dropFraction);
    // L = lambda_eff * W, measured entirely from the simulation.
    EXPECT_NEAR(sim.meanOccupancy,
                effLambda * sim.meanSojournSeconds,
                0.03 * std::max(1.0, sim.meanOccupancy));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, OracleConformance,
    ::testing::Values(GridCase{0.3, 1.0, 1}, GridCase{0.3, 1.0, 3},
                      GridCase{0.3, 1.0, 10}, GridCase{0.8, 1.0, 3},
                      GridCase{0.8, 1.0, 10}, GridCase{0.8, 2.5, 10},
                      GridCase{1.0, 1.0, 10}, GridCase{1.3, 1.0, 3},
                      GridCase{1.3, 1.0, 10}, GridCase{2.5, 1.0, 10},
                      GridCase{0.05, 1.0, 5}, GridCase{5.0, 0.5, 6}));

TEST(OracleClosedForms, ErlangLossAtCapacityOne)
{
    // M/D/1/1 is an Erlang loss system: P_block = rho / (1 + rho),
    // independent of the service distribution.
    for (const double rho : {0.1, 0.5, 1.0, 3.0, 20.0}) {
        OracleInput in;
        in.arrivalsPerSecond = rho;
        in.serviceSeconds = 1.0;
        in.capacity = 1;
        const OraclePrediction pred = predictOccupancy(in);
        EXPECT_NEAR(pred.blockingProbability, rho / (1.0 + rho), 1e-9)
            << "rho " << rho;
        EXPECT_NEAR(pred.expectedOccupancy, rho / (1.0 + rho), 1e-9)
            << "rho " << rho;
    }
}

TEST(OracleClosedForms, DistributionIsNormalized)
{
    for (const double rho : {0.2, 0.9, 1.5, 10.0, 60.0}) {
        OracleInput in;
        in.arrivalsPerSecond = rho;
        in.serviceSeconds = 1.0;
        in.capacity = 8;
        const OraclePrediction pred = predictOccupancy(in);
        const double total = std::accumulate(
            pred.occupancyDistribution.begin(),
            pred.occupancyDistribution.end(), 0.0);
        EXPECT_NEAR(total, 1.0, 1e-9) << "rho " << rho;
        for (const double p : pred.occupancyDistribution)
            ASSERT_GE(p, 0.0) << "rho " << rho;
    }
}

TEST(OracleClosedForms, LightLoadApproachesOpenQueue)
{
    // With a huge buffer and tiny load, blocking vanishes and the
    // occupancy approaches the M/D/1 value rho + rho^2/(2(1-rho)).
    OracleInput in;
    in.arrivalsPerSecond = 0.2;
    in.serviceSeconds = 1.0;
    in.capacity = 50;
    const OraclePrediction pred = predictOccupancy(in);
    const double rho = 0.2;
    EXPECT_LT(pred.blockingProbability, 1e-12);
    EXPECT_NEAR(pred.expectedOccupancy,
                rho + rho * rho / (2.0 * (1.0 - rho)), 1e-6);
}

TEST(OracleClosedForms, BlockingMonotoneInLoad)
{
    double previous = -1.0;
    for (double rho = 0.1; rho <= 6.0; rho += 0.1) {
        OracleInput in;
        in.arrivalsPerSecond = rho;
        in.serviceSeconds = 1.0;
        in.capacity = 10;
        const double blocking =
            predictOccupancy(in).blockingProbability;
        ASSERT_GT(blocking, previous - 1e-12) << "rho " << rho;
        previous = blocking;
    }
}

TEST(OracleClosedForms, BlockingMonotoneDecreasingInCapacity)
{
    double previous = 2.0;
    for (std::size_t k = 1; k <= 20; ++k) {
        OracleInput in;
        in.arrivalsPerSecond = 0.9;
        in.serviceSeconds = 1.0;
        in.capacity = k;
        const double blocking =
            predictOccupancy(in).blockingProbability;
        ASSERT_LT(blocking, previous + 1e-12) << "capacity " << k;
        previous = blocking;
    }
}

TEST(OracleClosedForms, SaturatedBranchIsContinuous)
{
    // The rho > 50 closed form must join the solved algebra smoothly.
    OracleInput in;
    in.serviceSeconds = 1.0;
    in.capacity = 6;
    in.arrivalsPerSecond = 49.9;
    const OraclePrediction below = predictOccupancy(in);
    in.arrivalsPerSecond = 50.1;
    const OraclePrediction above = predictOccupancy(in);
    EXPECT_NEAR(below.blockingProbability, above.blockingProbability,
                1e-4);
    EXPECT_NEAR(below.expectedOccupancy, above.expectedOccupancy,
                1e-3);
    EXPECT_NEAR(below.effectiveThroughput, above.effectiveThroughput,
                1e-3);
}

TEST(OracleClosedForms, SojournAtLeastOneService)
{
    for (const double rho : {0.1, 1.0, 4.0}) {
        OracleInput in;
        in.arrivalsPerSecond = rho;
        in.serviceSeconds = 2.0;
        in.capacity = 10;
        EXPECT_GE(predictOccupancy(in).expectedSojournSeconds,
                  2.0 - 1e-9)
            << "rho " << rho;
    }
}

TEST(OracleClosedForms, ThroughputNeverExceedsServiceRate)
{
    for (const double lambda : {0.5, 1.0, 2.0, 100.0}) {
        OracleInput in;
        in.arrivalsPerSecond = lambda;
        in.serviceSeconds = 0.5;
        in.capacity = 4;
        const OraclePrediction pred = predictOccupancy(in);
        EXPECT_LE(pred.effectiveThroughput, 2.0 + 1e-9)
            << "lambda " << lambda;
        EXPECT_LE(pred.effectiveThroughput, lambda + 1e-9)
            << "lambda " << lambda;
    }
}

TEST(OracleValidation, RejectsDegenerateInputs)
{
    OracleInput in;
    in.arrivalsPerSecond = 0.0;
    EXPECT_DEATH(predictOccupancy(in), "positive");
    in.arrivalsPerSecond = 1.0;
    in.serviceSeconds = -1.0;
    EXPECT_DEATH(predictOccupancy(in), "positive");
    in.serviceSeconds = 1.0;
    in.capacity = 0;
    EXPECT_DEATH(predictOccupancy(in), "capacity");
}

TEST(OracleValidation, SimulationRejectsDegenerateSpans)
{
    QueueSimConfig cfg;
    cfg.horizonSeconds = 0.0;
    EXPECT_DEATH(simulateQueue(cfg), "span");
    cfg.horizonSeconds = 10.0;
    cfg.warmupSeconds = -1.0;
    EXPECT_DEATH(simulateQueue(cfg), "span");
}

TEST(OracleSimulation, DeterministicForEqualSeeds)
{
    QueueSimConfig cfg;
    cfg.model.arrivalsPerSecond = 0.9;
    cfg.model.serviceSeconds = 1.0;
    cfg.model.capacity = 5;
    cfg.horizonSeconds = 5000.0;
    cfg.seed = 77;
    const QueueSimResult a = simulateQueue(cfg);
    const QueueSimResult b = simulateQueue(cfg);
    EXPECT_EQ(a.arrivals, b.arrivals);
    EXPECT_EQ(a.drops, b.drops);
    EXPECT_DOUBLE_EQ(a.meanOccupancy, b.meanOccupancy);
    EXPECT_DOUBLE_EQ(a.meanSojournSeconds, b.meanSojournSeconds);

    cfg.seed = 78;
    const QueueSimResult c = simulateQueue(cfg);
    EXPECT_FALSE(a.arrivals == c.arrivals &&
                 a.meanOccupancy == c.meanOccupancy);
}

} // namespace
} // namespace queueing
} // namespace quetzal
