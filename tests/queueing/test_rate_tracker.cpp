/**
 * @file
 * Tests for the lambda and execution-probability trackers.
 */

#include <gtest/gtest.h>

#include "queueing/rate_tracker.hpp"

namespace quetzal {
namespace queueing {
namespace {

TEST(ArrivalRateTracker, ConservativeBeforeObservations)
{
    ArrivalRateTracker tracker(256, 1.0);
    EXPECT_DOUBLE_EQ(tracker.arrivalsPerSecond(), 1.0);
}

TEST(ArrivalRateTracker, TracksStoredFraction)
{
    ArrivalRateTracker tracker(8, 1.0);
    for (int i = 0; i < 4; ++i)
        tracker.recordCapture(true);
    for (int i = 0; i < 4; ++i)
        tracker.recordCapture(false);
    EXPECT_DOUBLE_EQ(tracker.insertionsPerPeriod(), 0.5);
    EXPECT_DOUBLE_EQ(tracker.arrivalsPerSecond(), 0.5);
}

TEST(ArrivalRateTracker, ScalesWithCaptureRate)
{
    ArrivalRateTracker tracker(8, 4.0); // 4 captures per second
    for (int i = 0; i < 8; ++i)
        tracker.recordCapture(i % 2 == 0);
    EXPECT_DOUBLE_EQ(tracker.arrivalsPerSecond(), 2.0);
}

TEST(ArrivalRateTracker, SpawnsCountAsArrivals)
{
    ArrivalRateTracker tracker(4, 1.0);
    // Every capture stored, plus one spawn per capture: two arrivals
    // per period.
    for (int i = 0; i < 4; ++i) {
        tracker.recordCapture(true);
        tracker.recordInsertion();
    }
    EXPECT_DOUBLE_EQ(tracker.arrivalsPerSecond(), 2.0);
}

TEST(ArrivalRateTracker, WindowEvictsOldPeriods)
{
    ArrivalRateTracker tracker(4, 1.0);
    for (int i = 0; i < 4; ++i)
        tracker.recordCapture(true);
    EXPECT_DOUBLE_EQ(tracker.arrivalsPerSecond(), 1.0);
    for (int i = 0; i < 4; ++i)
        tracker.recordCapture(false);
    EXPECT_DOUBLE_EQ(tracker.arrivalsPerSecond(), 0.0);
}

TEST(ArrivalRateTracker, LagBoundedByWindow)
{
    // After a burst starts, the estimate converges within one window.
    ArrivalRateTracker tracker(16, 1.0);
    for (int i = 0; i < 64; ++i)
        tracker.recordCapture(false);
    for (int i = 0; i < 16; ++i)
        tracker.recordCapture(true);
    EXPECT_DOUBLE_EQ(tracker.arrivalsPerSecond(), 1.0);
}

TEST(ArrivalRateTracker, ClearResets)
{
    ArrivalRateTracker tracker(8, 1.0);
    tracker.recordCapture(true);
    tracker.clear();
    EXPECT_EQ(tracker.filled(), 0u);
    EXPECT_DOUBLE_EQ(tracker.arrivalsPerSecond(), 1.0); // conservative
}

TEST(ExecutionProbabilityTracker, ConservativeDefault)
{
    ExecutionProbabilityTracker tracker(64);
    EXPECT_DOUBLE_EQ(tracker.probability(), 1.0);
}

TEST(ExecutionProbabilityTracker, TracksFraction)
{
    ExecutionProbabilityTracker tracker(8);
    for (int i = 0; i < 6; ++i)
        tracker.recordExecution(i < 3);
    EXPECT_DOUBLE_EQ(tracker.probability(), 0.5);
}

TEST(ExecutionProbabilityTracker, SlidesWithWindow)
{
    ExecutionProbabilityTracker tracker(4);
    for (int i = 0; i < 4; ++i)
        tracker.recordExecution(true);
    for (int i = 0; i < 4; ++i)
        tracker.recordExecution(false);
    EXPECT_DOUBLE_EQ(tracker.probability(), 0.0);
}

} // namespace
} // namespace queueing
} // namespace quetzal
