/**
 * @file
 * Tests for the Little's-Law overflow predicate (paper Eq. 2 /
 * Alg. 2 line 6).
 */

#include <gtest/gtest.h>

#include "queueing/littles_law.hpp"

namespace quetzal {
namespace queueing {
namespace {

TEST(LittlesLaw, ExpectedArrivals)
{
    EXPECT_DOUBLE_EQ(expectedArrivals(0.5, 10.0), 5.0);
    EXPECT_DOUBLE_EQ(expectedArrivals(0.0, 10.0), 0.0);
    EXPECT_DOUBLE_EQ(expectedArrivals(2.0, 0.0), 0.0);
}

TEST(LittlesLaw, PredicateBoundary)
{
    // lambda * S = 5 exactly equals headroom 5: predicted (>=).
    EXPECT_TRUE(iboPredicted(0.5, 10.0, 10, 5));
    // Just below: not predicted.
    EXPECT_FALSE(iboPredicted(0.5, 9.9, 10, 5));
}

TEST(LittlesLaw, FullBufferAlwaysPredicted)
{
    EXPECT_TRUE(iboPredicted(0.0, 0.0, 10, 10));
    EXPECT_TRUE(iboPredicted(0.1, 0.1, 10, 12)); // over-full clamps
}

TEST(LittlesLaw, EmptyBufferNeedsRealPressure)
{
    EXPECT_FALSE(iboPredicted(0.5, 10.0, 10, 0)); // 5 < 10
    EXPECT_TRUE(iboPredicted(1.5, 10.0, 10, 0));  // 15 >= 10
}

TEST(LittlesLaw, MonotoneInOccupancy)
{
    for (std::size_t occ = 0; occ < 10; ++occ) {
        if (iboPredicted(0.4, 8.0, 10, occ)) {
            // Once predicted, stays predicted for fuller buffers.
            for (std::size_t later = occ; later <= 10; ++later)
                EXPECT_TRUE(iboPredicted(0.4, 8.0, 10, later));
            break;
        }
    }
}

TEST(LittlesLawDeathTest, NegativeInputsPanic)
{
    EXPECT_DEATH(expectedArrivals(-1.0, 1.0), "non-negative");
    EXPECT_DEATH(expectedArrivals(1.0, -1.0), "non-negative");
}

} // namespace
} // namespace queueing
} // namespace quetzal
