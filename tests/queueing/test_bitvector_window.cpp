/**
 * @file
 * Tests for the sliding bit-vector window with 1s-counter.
 */

#include <deque>

#include <gtest/gtest.h>

#include "queueing/bitvector_window.hpp"
#include "util/random.hpp"

namespace quetzal {
namespace queueing {
namespace {

TEST(BitVectorWindow, EmptyState)
{
    BitVectorWindow window(64);
    EXPECT_EQ(window.window(), 64u);
    EXPECT_EQ(window.filled(), 0u);
    EXPECT_EQ(window.ones(), 0u);
    EXPECT_FALSE(window.warm());
    EXPECT_EQ(window.fraction(0.5), 0.5); // fallback
}

TEST(BitVectorWindow, CountsDuringWarmup)
{
    BitVectorWindow window(8);
    window.append(true);
    window.append(false);
    window.append(true);
    EXPECT_EQ(window.filled(), 3u);
    EXPECT_EQ(window.ones(), 2u);
    EXPECT_NEAR(window.fraction(), 2.0 / 3.0, 1e-12);
}

TEST(BitVectorWindow, EvictsOldestWhenFull)
{
    BitVectorWindow window(4);
    for (bool b : {true, true, false, false})
        window.append(b);
    EXPECT_TRUE(window.warm());
    EXPECT_EQ(window.ones(), 2u);
    // Append two zeros: evicts the two leading ones.
    window.append(false);
    window.append(false);
    EXPECT_EQ(window.ones(), 0u);
    // Append four ones: fully saturated.
    for (int i = 0; i < 4; ++i)
        window.append(true);
    EXPECT_EQ(window.ones(), 4u);
    EXPECT_DOUBLE_EQ(window.fraction(), 1.0);
}

TEST(BitVectorWindow, FixedFractionMatchesDouble)
{
    BitVectorWindow window(256);
    util::Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        window.append(rng.bernoulli(0.3));
        EXPECT_NEAR(util::fixedToDouble(window.fractionFixed()),
                    window.fraction(), 1e-4);
    }
}

TEST(BitVectorWindow, ClearResets)
{
    BitVectorWindow window(16);
    for (int i = 0; i < 20; ++i)
        window.append(true);
    window.clear();
    EXPECT_EQ(window.filled(), 0u);
    EXPECT_EQ(window.ones(), 0u);
}

/** Property: window agrees with a deque reference for many shapes. */
class BitWindowProperty
    : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(BitWindowProperty, AgreesWithDequeModel)
{
    const std::uint32_t windowBits = GetParam();
    BitVectorWindow window(windowBits);
    std::deque<bool> model;
    util::Rng rng(windowBits * 977 + 5);
    for (int i = 0; i < 3000; ++i) {
        const bool bit = rng.bernoulli(0.4);
        window.append(bit);
        model.push_back(bit);
        if (model.size() > windowBits)
            model.pop_front();
        std::uint32_t ones = 0;
        for (bool b : model)
            ones += b;
        ASSERT_EQ(window.ones(), ones);
        ASSERT_EQ(window.filled(), model.size());
    }
}

INSTANTIATE_TEST_SUITE_P(WindowShapes, BitWindowProperty,
                         ::testing::Values(1, 2, 3, 7, 8, 63, 64, 65,
                                           100, 256));

} // namespace
} // namespace queueing
} // namespace quetzal
