/**
 * @file
 * Differential test: the indexed InputBuffer (slot/lane/free-list
 * structures) against a naive reference model implementing the same
 * contract with plain O(n) scans over a vector in arrival order.
 * Randomized operation sequences — push / markInFlight / release /
 * retag / drop-on-full / clear — must keep every observable (sizes,
 * per-job counts, FIFO order, oldest-per-job, FCFS/LCFS choice,
 * overflow counters) identical between the two. This pins the
 * O(1)-index rewrite to the exact semantics the scheduling policies
 * and the simulator tie-break on, including duplicate capture ticks,
 * which force the buffer off its capture-ordered fast path.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <random>
#include <vector>

#include "queueing/input_buffer.hpp"

namespace quetzal {
namespace queueing {
namespace {

/**
 * The pre-index semantics, stated as directly as possible: records
 * live in a vector in arrival order; every query scans.
 */
class NaiveBuffer
{
  public:
    explicit NaiveBuffer(std::size_t capacity) : cap(capacity) {}

    std::size_t size() const { return records.size(); }
    bool full() const { return records.size() == cap; }

    bool
    tryPush(const InputRecord &record)
    {
        if (full()) {
            ++overflowCounts.total;
            if (record.interesting)
                ++overflowCounts.interesting;
            return false;
        }
        records.push_back(record);
        return true;
    }

    std::size_t
    countForJob(JobId job) const
    {
        std::size_t n = 0;
        for (const auto &r : records)
            if (!r.inFlight && r.jobId == job)
                ++n;
        return n;
    }

    bool
    hasSchedulable() const
    {
        return std::any_of(records.begin(), records.end(),
                           [](const InputRecord &r) {
                               return !r.inFlight;
                           });
    }

    std::optional<std::uint64_t>
    oldestIdForJob(JobId job) const
    {
        for (const auto &r : records)
            if (!r.inFlight && r.jobId == job)
                return r.id;
        return std::nullopt;
    }

    /** FCFS: min (captureTick, enqueueTick); first scanned wins. */
    std::optional<std::uint64_t>
    oldestSchedulableId() const
    {
        const InputRecord *best = nullptr;
        for (const auto &r : records) {
            if (r.inFlight)
                continue;
            if (best == nullptr || r.captureTick < best->captureTick ||
                (r.captureTick == best->captureTick &&
                 r.enqueueTick < best->enqueueTick))
                best = &r;
        }
        if (best == nullptr)
            return std::nullopt;
        return best->id;
    }

    /** LCFS: max (captureTick, enqueueTick); last scanned wins. */
    std::optional<std::uint64_t>
    newestSchedulableId() const
    {
        const InputRecord *best = nullptr;
        for (const auto &r : records) {
            if (r.inFlight)
                continue;
            const bool earlier =
                best != nullptr &&
                (r.captureTick < best->captureTick ||
                 (r.captureTick == best->captureTick &&
                  r.enqueueTick < best->enqueueTick));
            if (!earlier)
                best = &r;
        }
        if (best == nullptr)
            return std::nullopt;
        return best->id;
    }

    void
    markInFlight(std::uint64_t id)
    {
        find(id).inFlight = true;
    }

    void
    release(std::uint64_t id)
    {
        const auto it = std::find_if(records.begin(), records.end(),
                                     [&](const InputRecord &r) {
                                         return r.id == id;
                                     });
        ASSERT_NE(it, records.end());
        records.erase(it);
    }

    void
    retag(std::uint64_t id, JobId nextJob, Tick enqueueTick)
    {
        InputRecord &r = find(id);
        r.inFlight = false;
        r.jobId = nextJob;
        r.enqueueTick = enqueueTick;
    }

    void clear() { records.clear(); }

    const OverflowCounts &overflows() const { return overflowCounts; }

    /** Resident record ids in FIFO (arrival) order. */
    std::vector<std::uint64_t>
    fifoIds() const
    {
        std::vector<std::uint64_t> ids;
        for (const auto &r : records)
            ids.push_back(r.id);
        return ids;
    }

    /** Ids of schedulable records of one job, in arrival order. */
    std::vector<std::uint64_t>
    schedulableIdsForJob(JobId job) const
    {
        std::vector<std::uint64_t> ids;
        for (const auto &r : records)
            if (!r.inFlight && r.jobId == job)
                ids.push_back(r.id);
        return ids;
    }

    /** A random in-flight id, if any (for release/retag choices). */
    std::optional<std::uint64_t>
    anyInFlight(std::mt19937_64 &rng) const
    {
        std::vector<std::uint64_t> ids;
        for (const auto &r : records)
            if (r.inFlight)
                ids.push_back(r.id);
        if (ids.empty())
            return std::nullopt;
        return ids[rng() % ids.size()];
    }

  private:
    InputRecord &
    find(std::uint64_t id)
    {
        for (auto &r : records)
            if (r.id == id)
                return r;
        ADD_FAILURE() << "unknown id " << id;
        static InputRecord dummy;
        return dummy;
    }

    std::size_t cap;
    std::vector<InputRecord> records;
    OverflowCounts overflowCounts;
};

constexpr JobId kJobs = 3;

void
expectEquivalent(const InputBuffer &indexed, const NaiveBuffer &naive)
{
    ASSERT_EQ(indexed.size(), naive.size());
    ASSERT_EQ(indexed.full(), naive.full());
    ASSERT_EQ(indexed.hasSchedulable(), naive.hasSchedulable());
    ASSERT_EQ(indexed.overflows().total, naive.overflows().total);
    ASSERT_EQ(indexed.overflows().interesting,
              naive.overflows().interesting);

    std::vector<std::uint64_t> fifo;
    indexed.forEachFifo([&](SlotId, const InputRecord &rec) {
        fifo.push_back(rec.id);
    });
    ASSERT_EQ(fifo, naive.fifoIds());

    for (JobId job = 0; job <= kJobs; ++job) {
        ASSERT_EQ(indexed.countForJob(job), naive.countForJob(job))
            << "job " << job;
        const auto slot = indexed.oldestSlotForJob(job);
        const auto naiveId = naive.oldestIdForJob(job);
        ASSERT_EQ(slot.has_value(), naiveId.has_value()) << "job " << job;
        if (slot) {
            ASSERT_EQ(indexed.record(*slot).id, *naiveId);
        }
    }

    const auto fcfs = indexed.oldestSchedulable();
    const auto naiveFcfs = naive.oldestSchedulableId();
    ASSERT_EQ(fcfs.has_value(), naiveFcfs.has_value());
    if (fcfs) {
        ASSERT_EQ(indexed.record(*fcfs).id, *naiveFcfs);
    }

    const auto lcfs = indexed.newestSchedulable();
    const auto naiveLcfs = naive.newestSchedulableId();
    ASSERT_EQ(lcfs.has_value(), naiveLcfs.has_value());
    if (lcfs) {
        ASSERT_EQ(indexed.record(*lcfs).id, *naiveLcfs);
    }
}

/**
 * One randomized episode. strictCaptures drives the capture-ordered
 * fast path; duplicated ticks drive the exact fallback scan.
 */
void
runEpisode(std::uint64_t seed, bool strictCaptures)
{
    std::mt19937_64 rng(seed);
    const std::size_t capacity = 2 + rng() % 12;
    InputBuffer indexed(capacity);
    NaiveBuffer naive(capacity);

    std::uint64_t nextId = 1;
    Tick tick = 0;

    const int steps = 400;
    for (int step = 0; step < steps; ++step) {
        const unsigned op = rng() % 100;
        if (op < 45) {
            // Push (drops on full in both models).
            InputRecord rec;
            rec.id = nextId++;
            tick += strictCaptures ? 1 + rng() % 3 : rng() % 2;
            rec.captureTick = tick;
            rec.enqueueTick = tick;
            rec.jobId = static_cast<JobId>(rng() % kJobs);
            rec.interesting = rng() % 2 == 0;
            ASSERT_EQ(indexed.tryPush(rec), naive.tryPush(rec));
        } else if (op < 70) {
            // Mark the oldest input of a random job in flight.
            const auto job = static_cast<JobId>(rng() % kJobs);
            const auto slot = indexed.oldestSlotForJob(job);
            const auto naiveId = naive.oldestIdForJob(job);
            ASSERT_EQ(slot.has_value(), naiveId.has_value());
            if (slot) {
                const InputRecord taken = indexed.markInFlight(*slot);
                ASSERT_EQ(taken.id, *naiveId);
                naive.markInFlight(*naiveId);
            }
        } else if (op < 85) {
            // Release a random in-flight input.
            if (const auto id = naive.anyInFlight(rng)) {
                indexed.release(*id);
                naive.release(*id);
            }
        } else if (op < 97) {
            // Retag (spawn) a random in-flight input.
            if (const auto id = naive.anyInFlight(rng)) {
                const auto job = static_cast<JobId>(rng() % kJobs);
                indexed.retag(*id, job, tick);
                naive.retag(*id, job, tick);
            }
        } else {
            indexed.clear();
            naive.clear();
        }
        expectEquivalent(indexed, naive);
        if (::testing::Test::HasFatalFailure())
            return;
    }
}

class InputBufferDifferential
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(InputBufferDifferential, StrictCaptureOrder)
{
    runEpisode(GetParam() * 2654435761ull + 17, true);
}

TEST_P(InputBufferDifferential, DuplicateCaptureTicks)
{
    runEpisode(GetParam() * 40503ull + 5, false);
}

INSTANTIATE_TEST_SUITE_P(Random, InputBufferDifferential,
                         ::testing::Range<std::uint64_t>(0, 12));

/**
 * The spawn consumption order of the real runtime: the retagged
 * record keeps its arrival position, so a lane receiving retags in
 * ascending id order stays ordered and oldest-first consumption
 * drains it in id order.
 */
TEST(InputBufferDifferentialDirected, RetagKeepsArrivalOrder)
{
    InputBuffer indexed(8);
    NaiveBuffer naive(8);
    for (std::uint64_t id = 1; id <= 6; ++id) {
        InputRecord rec;
        rec.id = id;
        rec.captureTick = static_cast<Tick>(id * 10);
        rec.enqueueTick = rec.captureTick;
        rec.jobId = 0;
        ASSERT_TRUE(indexed.tryPush(rec));
        ASSERT_TRUE(naive.tryPush(rec));
    }
    // Consume 3, 1, 2 out of order (the scheduler can interleave),
    // spawning each to job 1; lane 1 must still drain 1, 2, 3.
    for (const std::uint64_t id : {3u, 1u, 2u}) {
        // Ids were pushed in order, so find each record's slot via
        // the job-0 lane walk of the naive model.
        const auto ids = naive.schedulableIdsForJob(0);
        ASSERT_NE(std::find(ids.begin(), ids.end(), id), ids.end());
        // Mark this specific record: advance the indexed lane by
        // marking-then-retagging is not possible, so locate its slot
        // through the FIFO walk.
        std::optional<SlotId> slot;
        indexed.forEachFifo([&](SlotId s, const InputRecord &rec) {
            if (rec.id == id)
                slot = s;
        });
        ASSERT_TRUE(slot.has_value());
        indexed.markInFlight(*slot);
        naive.markInFlight(id);
        indexed.retag(id, 1, 1000 + id);
        naive.retag(id, 1, 1000 + id);
        expectEquivalent(indexed, naive);
    }
    const auto lane = naive.schedulableIdsForJob(1);
    ASSERT_EQ(lane, (std::vector<std::uint64_t>{1, 2, 3}));
    ASSERT_EQ(indexed.record(*indexed.oldestSlotForJob(1)).id, 1u);
}

} // namespace
} // namespace queueing
} // namespace quetzal
