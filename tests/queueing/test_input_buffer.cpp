/**
 * @file
 * Tests for the bounded input buffer: capacity invariants, overflow
 * accounting, in-flight slot reservation, and the retag spawn path.
 */

#include <gtest/gtest.h>

#include "queueing/input_buffer.hpp"

namespace quetzal {
namespace queueing {
namespace {

InputRecord
record(std::uint64_t id, JobId job, bool interesting = false,
       Tick captureTick = 0)
{
    InputRecord r;
    r.id = id;
    r.jobId = job;
    r.interesting = interesting;
    r.captureTick = captureTick;
    r.enqueueTick = captureTick;
    return r;
}

TEST(InputBuffer, PushUntilFullThenOverflow)
{
    InputBuffer buffer(3);
    EXPECT_TRUE(buffer.tryPush(record(1, 0)));
    EXPECT_TRUE(buffer.tryPush(record(2, 0, true)));
    EXPECT_TRUE(buffer.tryPush(record(3, 0)));
    EXPECT_TRUE(buffer.full());
    EXPECT_FALSE(buffer.tryPush(record(4, 0, true)));
    EXPECT_FALSE(buffer.tryPush(record(5, 0, false)));
    EXPECT_EQ(buffer.overflows().total, 2u);
    EXPECT_EQ(buffer.overflows().interesting, 1u);
    EXPECT_EQ(buffer.size(), 3u);
}

TEST(InputBuffer, OccupancyFraction)
{
    InputBuffer buffer(10);
    EXPECT_DOUBLE_EQ(buffer.occupancyFraction(), 0.0);
    for (std::uint64_t i = 0; i < 5; ++i)
        buffer.tryPush(record(i, 0));
    EXPECT_DOUBLE_EQ(buffer.occupancyFraction(), 0.5);
}

TEST(InputBuffer, PerJobQueries)
{
    InputBuffer buffer(10);
    buffer.tryPush(record(1, 0, false, 100));
    buffer.tryPush(record(2, 1, false, 200));
    buffer.tryPush(record(3, 0, false, 300));
    EXPECT_EQ(buffer.countForJob(0), 2u);
    EXPECT_EQ(buffer.countForJob(1), 1u);
    EXPECT_EQ(buffer.countForJob(7), 0u);
    ASSERT_TRUE(buffer.oldestSlotForJob(0).has_value());
    EXPECT_EQ(buffer.record(*buffer.oldestSlotForJob(0)).id, 1u);
    EXPECT_EQ(buffer.record(*buffer.oldestSlotForJob(1)).id, 2u);
    EXPECT_FALSE(buffer.oldestSlotForJob(7).has_value());
}

TEST(InputBuffer, InFlightKeepsSlotButNotSchedulable)
{
    InputBuffer buffer(2);
    buffer.tryPush(record(1, 0));
    buffer.tryPush(record(2, 0));
    const InputRecord taken =
        buffer.markInFlight(*buffer.oldestSlotForJob(0));
    EXPECT_EQ(taken.id, 1u);
    // Slot still occupied: buffer remains full.
    EXPECT_TRUE(buffer.full());
    EXPECT_FALSE(buffer.tryPush(record(3, 0)));
    // But only record 2 is schedulable.
    EXPECT_EQ(buffer.countForJob(0), 1u);
    EXPECT_EQ(buffer.record(*buffer.oldestSlotForJob(0)).id, 2u);
    EXPECT_TRUE(buffer.hasSchedulable());
}

TEST(InputBuffer, ReleaseFreesSlot)
{
    InputBuffer buffer(2);
    buffer.tryPush(record(1, 0));
    buffer.tryPush(record(2, 0));
    buffer.markInFlight(*buffer.oldestSlotForJob(0));
    buffer.release(1);
    EXPECT_EQ(buffer.size(), 1u);
    EXPECT_TRUE(buffer.tryPush(record(3, 0)));
}

TEST(InputBuffer, RetagNeverOverflows)
{
    InputBuffer buffer(2);
    buffer.tryPush(record(1, 0));
    buffer.tryPush(record(2, 0));
    buffer.markInFlight(*buffer.oldestSlotForJob(0));
    // Spawn: retag for job 1 even though the buffer is full.
    buffer.retag(1, 1, 555);
    EXPECT_TRUE(buffer.full());
    EXPECT_EQ(buffer.overflows().total, 0u);
    ASSERT_TRUE(buffer.oldestSlotForJob(1).has_value());
    const auto &retagged = buffer.record(*buffer.oldestSlotForJob(1));
    EXPECT_EQ(retagged.id, 1u);
    EXPECT_EQ(retagged.enqueueTick, 555);
    EXPECT_FALSE(retagged.inFlight);
}

TEST(InputBuffer, HasSchedulableFalseWhenAllInFlight)
{
    InputBuffer buffer(2);
    buffer.tryPush(record(1, 0));
    buffer.markInFlight(*buffer.oldestSlotForJob(0));
    EXPECT_FALSE(buffer.hasSchedulable());
    EXPECT_FALSE(buffer.oldestSlotForJob(0).has_value());
}

TEST(InputBufferDeathTest, DoubleInFlightPanics)
{
    InputBuffer buffer(2);
    buffer.tryPush(record(1, 0));
    const SlotId slot = *buffer.oldestSlotForJob(0);
    buffer.markInFlight(slot);
    EXPECT_DEATH(buffer.markInFlight(slot), "in flight");
}

TEST(InputBufferDeathTest, ReleaseNotInFlightPanics)
{
    InputBuffer buffer(2);
    buffer.tryPush(record(1, 0));
    EXPECT_DEATH(buffer.release(1), "not in flight");
}

TEST(InputBufferDeathTest, RetagUnknownIdPanics)
{
    InputBuffer buffer(2);
    buffer.tryPush(record(1, 0));
    buffer.markInFlight(*buffer.oldestSlotForJob(0));
    EXPECT_DEATH(buffer.retag(99, 1, 0), "unknown");
}

} // namespace
} // namespace queueing
} // namespace quetzal
