/**
 * @file
 * Tests for the synthetic event generator and environment presets,
 * including parameterized sweeps over all presets.
 */

#include <gtest/gtest.h>

#include "trace/event_generator.hpp"
#include "trace/trace_stats.hpp"

namespace quetzal {
namespace trace {
namespace {

TEST(EventGenerator, Deterministic)
{
    const auto cfg = EventGeneratorConfig::forPreset(
        EnvironmentPreset::Crowded, 100, 5);
    const EventTrace a = EventGenerator(cfg).generate();
    const EventTrace b = EventGenerator(cfg).generate();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.at(i).start, b.at(i).start);
        EXPECT_EQ(a.at(i).duration, b.at(i).duration);
        EXPECT_EQ(a.at(i).interesting, b.at(i).interesting);
    }
}

TEST(EventGenerator, SeedChangesTrace)
{
    auto cfg = EventGeneratorConfig::forPreset(
        EnvironmentPreset::Crowded, 100, 5);
    const EventTrace a = EventGenerator(cfg).generate();
    cfg.seed = 6;
    const EventTrace b = EventGenerator(cfg).generate();
    bool different = false;
    for (std::size_t i = 0; i < a.size(); ++i)
        different = different || a.at(i).start != b.at(i).start;
    EXPECT_TRUE(different);
}

TEST(EventGenerator, MoreCrowdedHasLongerEvents)
{
    const auto more = computeStats(
        EventGenerator(EventGeneratorConfig::forPreset(
                           EnvironmentPreset::MoreCrowded, 500, 5))
            .generate());
    const auto less = computeStats(
        EventGenerator(EventGeneratorConfig::forPreset(
                           EnvironmentPreset::LessCrowded, 500, 5))
            .generate());
    EXPECT_GT(more.meanDurationSeconds, less.meanDurationSeconds);
    EXPECT_GT(more.activityDutyCycle, less.activityDutyCycle);
}

TEST(TraceStats, ExpectedStoredInputsScalesWithRate)
{
    const auto stats = computeStats(
        EventGenerator(EventGeneratorConfig::forPreset(
                           EnvironmentPreset::Crowded, 200, 5))
            .generate());
    EXPECT_NEAR(stats.expectedStoredInputs(2.0),
                2.0 * stats.expectedStoredInputs(1.0), 1e-9);
}

/** Parameterized sweep: invariants hold for every preset. */
class PresetProperty
    : public ::testing::TestWithParam<EnvironmentPreset>
{
};

TEST_P(PresetProperty, EventCountAndOrdering)
{
    const auto cfg = EventGeneratorConfig::forPreset(GetParam(), 300, 7);
    const EventTrace trace = EventGenerator(cfg).generate();
    ASSERT_EQ(trace.size(), 300u);
    for (std::size_t i = 1; i < trace.size(); ++i)
        EXPECT_GE(trace.at(i).start, trace.at(i - 1).end());
}

TEST_P(PresetProperty, DurationsRespectCaps)
{
    const auto cfg = EventGeneratorConfig::forPreset(GetParam(), 500, 7);
    const EventTrace trace = EventGenerator(cfg).generate();
    for (const auto &event : trace.data()) {
        const double capSeconds = event.interesting ?
            cfg.maxInterestingSeconds : cfg.maxUninterestingSeconds;
        EXPECT_LE(ticksToSeconds(event.duration), capSeconds + 1e-9);
        EXPECT_GE(ticksToSeconds(event.duration),
                  cfg.minDurationSeconds - 1e-9);
    }
}

TEST_P(PresetProperty, InterestingMixNearConfigured)
{
    const auto cfg = EventGeneratorConfig::forPreset(GetParam(), 2000, 7);
    const EventTrace trace = EventGenerator(cfg).generate();
    const double fraction =
        static_cast<double>(trace.interestingCount()) /
        static_cast<double>(trace.size());
    EXPECT_NEAR(fraction, cfg.interestingProbability, 0.05);
}

TEST_P(PresetProperty, MeanGapNearConfigured)
{
    const auto cfg = EventGeneratorConfig::forPreset(GetParam(), 2000, 7);
    const auto stats =
        computeStats(EventGenerator(cfg).generate());
    EXPECT_NEAR(stats.meanGapSeconds, cfg.meanInterarrivalSeconds,
                0.15 * cfg.meanInterarrivalSeconds);
}

INSTANTIATE_TEST_SUITE_P(
    AllPresets, PresetProperty,
    ::testing::Values(EnvironmentPreset::MoreCrowded,
                      EnvironmentPreset::Crowded,
                      EnvironmentPreset::LessCrowded,
                      EnvironmentPreset::Msp430Short),
    [](const auto &info) { return environmentName(info.param); });

TEST(EventGeneratorDeathTest, InvalidConfigIsFatal)
{
    EventGeneratorConfig bad;
    bad.eventCount = 0;
    EXPECT_EXIT(EventGenerator{bad}, ::testing::ExitedWithCode(1),
                "count");
}

} // namespace
} // namespace trace
} // namespace quetzal
