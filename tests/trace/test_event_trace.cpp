/**
 * @file
 * Tests for trace::EventTrace queries and persistence.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "trace/event_trace.hpp"

namespace quetzal {
namespace trace {
namespace {

EventTrace
sample()
{
    return EventTrace({
        {1000, 500, true},
        {3000, 1000, false},
        {10'000, 2000, true},
    });
}

TEST(EventTrace, BasicAccess)
{
    const EventTrace trace = sample();
    EXPECT_EQ(trace.size(), 3u);
    EXPECT_EQ(trace.interestingCount(), 2u);
    EXPECT_EQ(trace.endTime(), 12'000);
    EXPECT_EQ(trace.at(1).start, 3000);
}

TEST(EventTrace, EventAtQueries)
{
    const EventTrace trace = sample();
    EXPECT_EQ(trace.eventAt(0), nullptr);
    EXPECT_EQ(trace.eventAt(999), nullptr);
    ASSERT_NE(trace.eventAt(1000), nullptr);
    EXPECT_TRUE(trace.eventAt(1000)->interesting);
    ASSERT_NE(trace.eventAt(1499), nullptr);
    EXPECT_EQ(trace.eventAt(1500), nullptr); // right-open interval
    ASSERT_NE(trace.eventAt(3500), nullptr);
    EXPECT_FALSE(trace.eventAt(3500)->interesting);
    EXPECT_EQ(trace.eventAt(99'999), nullptr);
}

TEST(EventTrace, ActiveAndInterestingAt)
{
    const EventTrace trace = sample();
    EXPECT_TRUE(trace.activeAt(1200));
    EXPECT_TRUE(trace.interestingAt(1200));
    EXPECT_TRUE(trace.activeAt(3500));
    EXPECT_FALSE(trace.interestingAt(3500));
    EXPECT_FALSE(trace.activeAt(5000));
    EXPECT_FALSE(trace.interestingAt(5000));
}

TEST(EventTrace, EmptyTrace)
{
    const EventTrace trace;
    EXPECT_TRUE(trace.empty());
    EXPECT_EQ(trace.endTime(), 0);
    EXPECT_EQ(trace.eventAt(0), nullptr);
}

TEST(EventTrace, CsvRoundTrip)
{
    const EventTrace trace = sample();
    std::ostringstream out;
    trace.writeCsv(out);
    std::istringstream in(out.str());
    const EventTrace parsed = EventTrace::readCsv(in);
    ASSERT_EQ(parsed.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        EXPECT_EQ(parsed.at(i).start, trace.at(i).start);
        EXPECT_EQ(parsed.at(i).duration, trace.at(i).duration);
        EXPECT_EQ(parsed.at(i).interesting, trace.at(i).interesting);
    }
}

TEST(EventTraceDeathTest, OverlappingEventsPanic)
{
    EXPECT_DEATH(EventTrace({{0, 100, true}, {50, 100, false}}),
                 "overlap");
}

TEST(EventTraceDeathTest, ZeroDurationPanics)
{
    EXPECT_DEATH(EventTrace({{0, 0, true}}), "duration");
}

} // namespace
} // namespace trace
} // namespace quetzal
