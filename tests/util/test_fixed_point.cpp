/**
 * @file
 * Tests for Q16.16 fixed-point helpers.
 */

#include <gtest/gtest.h>

#include "util/fixed_point.hpp"

namespace quetzal {
namespace util {
namespace {

TEST(FixedPoint, Conversions)
{
    EXPECT_EQ(fixedFromInt(1), kFixedOne);
    EXPECT_DOUBLE_EQ(fixedToDouble(kFixedOne), 1.0);
    EXPECT_DOUBLE_EQ(fixedToDouble(fixedFromDouble(0.5)), 0.5);
    EXPECT_NEAR(fixedToDouble(fixedFromDouble(0.1)), 0.1, 1e-4);
    EXPECT_NEAR(fixedToDouble(fixedFromDouble(-2.25)), -2.25, 1e-4);
}

TEST(FixedPoint, Multiplication)
{
    const Fixed half = fixedFromDouble(0.5);
    const Fixed three = fixedFromInt(3);
    EXPECT_NEAR(fixedToDouble(fixedMul(half, three)), 1.5, 1e-4);
    EXPECT_NEAR(fixedToDouble(fixedMul(half, half)), 0.25, 1e-4);
}

TEST(FixedPoint, ScaleCounts)
{
    const Fixed threeQuarters = fixedFromDouble(0.75);
    EXPECT_EQ(fixedScale(threeQuarters, 100), 75);
    EXPECT_EQ(fixedScale(kFixedOne, 12345), 12345);
    EXPECT_EQ(fixedScale(0, 999), 0);
}

TEST(FixedPoint, Pow2FractionMatchesDivision)
{
    // 48 ones in a 64-bit window: 0.75 exactly, with one shift.
    const Fixed f = fixedFractionPow2(48, 6);
    EXPECT_DOUBLE_EQ(fixedToDouble(f), 0.75);
    // 100 of 256.
    EXPECT_NEAR(fixedToDouble(fixedFractionPow2(100, 8)), 100.0 / 256.0,
                1e-9);
}

TEST(FixedPoint, Pow2FractionSweep)
{
    for (int log2w = 0; log2w <= 10; ++log2w) {
        const std::int32_t window = 1 << log2w;
        for (std::int32_t ones = 0; ones <= window;
             ones += window / 8 + 1) {
            EXPECT_NEAR(fixedToDouble(fixedFractionPow2(ones, log2w)),
                        static_cast<double>(ones) / window, 1e-4);
        }
    }
}

} // namespace
} // namespace util
} // namespace quetzal
