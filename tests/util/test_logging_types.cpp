/**
 * @file
 * Tests for the logging channels and the fundamental unit helpers.
 */

#include <gtest/gtest.h>

#include "util/logging.hpp"
#include "util/types.hpp"

namespace quetzal {
namespace util {
namespace {

TEST(Logging, LevelRoundTrip)
{
    const LogLevel before = logLevel();
    setLogLevel(LogLevel::Verbose);
    EXPECT_EQ(logLevel(), LogLevel::Verbose);
    setLogLevel(LogLevel::Silent);
    EXPECT_EQ(logLevel(), LogLevel::Silent);
    setLogLevel(before);
}

TEST(Logging, MsgConcatenates)
{
    EXPECT_EQ(msg("a", 1, "b", 2.5), "a1b2.5");
    EXPECT_EQ(msg(), "");
}

TEST(LoggingDeathTest, PanicAborts)
{
    EXPECT_DEATH(panic("invariant broken"), "invariant broken");
}

TEST(LoggingDeathTest, FatalExitsCleanly)
{
    EXPECT_EXIT(fatal("bad config"), ::testing::ExitedWithCode(1),
                "bad config");
}

TEST(Types, TickConversions)
{
    EXPECT_EQ(secondsToTicks(1.0), 1000);
    EXPECT_EQ(secondsToTicks(0.0015), 1);
    EXPECT_EQ(secondsToTicks(2.5), 2500);
    EXPECT_DOUBLE_EQ(ticksToSeconds(1500), 1.5);
    EXPECT_EQ(millisecondsToTicks(42.0), 42);
}

TEST(Types, RoundTripWholeMilliseconds)
{
    for (Tick t : {Tick{0}, Tick{1}, Tick{999}, Tick{123456}})
        EXPECT_EQ(secondsToTicks(ticksToSeconds(t)), t);
}

TEST(Types, EnergyOver)
{
    // 10 mW for 2 s = 20 mJ.
    EXPECT_DOUBLE_EQ(energyOver(10e-3, 2000), 20e-3);
    EXPECT_DOUBLE_EQ(energyOver(0.0, 12345), 0.0);
    EXPECT_DOUBLE_EQ(energyOver(1.0, 1), 1e-3);
}

TEST(Types, NeverComparesGreatest)
{
    EXPECT_GT(kTickNever, secondsToTicks(1e12));
}

} // namespace
} // namespace util
} // namespace quetzal
