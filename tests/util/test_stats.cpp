/**
 * @file
 * Tests for util statistics helpers.
 */

#include <gtest/gtest.h>

#include "util/stats.hpp"

namespace quetzal {
namespace util {
namespace {

TEST(RunningStats, EmptyIsZero)
{
    RunningStats stats;
    EXPECT_EQ(stats.count(), 0u);
    EXPECT_EQ(stats.mean(), 0.0);
    EXPECT_EQ(stats.variance(), 0.0);
    EXPECT_EQ(stats.sum(), 0.0);
}

TEST(RunningStats, KnownMoments)
{
    RunningStats stats;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        stats.add(v);
    EXPECT_EQ(stats.count(), 8u);
    EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
    // Unbiased sample variance of the classic example set is 32/7.
    EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_EQ(stats.min(), 2.0);
    EXPECT_EQ(stats.max(), 9.0);
    EXPECT_EQ(stats.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential)
{
    RunningStats whole;
    RunningStats left;
    RunningStats right;
    for (int i = 0; i < 100; ++i) {
        const double v = 0.1 * i * i - 3.0 * i;
        whole.add(v);
        (i < 37 ? left : right).add(v);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), whole.count());
    EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
    EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
    EXPECT_EQ(left.min(), whole.min());
    EXPECT_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty)
{
    RunningStats a;
    a.add(1.0);
    a.add(3.0);
    RunningStats empty;
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    RunningStats b;
    b.merge(a);
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Histogram, BinningAndEdges)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);
    h.add(9.5);
    h.add(-100.0); // clamps into the first bin
    h.add(100.0);  // clamps into the last bin
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(9), 2u);
    EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, BinCenter)
{
    Histogram h(0.0, 10.0, 10);
    EXPECT_DOUBLE_EQ(h.binCenter(0), 0.5);
    EXPECT_DOUBLE_EQ(h.binCenter(9), 9.5);
}

TEST(Histogram, QuantileUniform)
{
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        h.add(i + 0.5);
    EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
    EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
}

TEST(GeometricMean, Basics)
{
    EXPECT_DOUBLE_EQ(geometricMean({}), 1.0);
    EXPECT_NEAR(geometricMean({2.0, 8.0}), 4.0, 1e-12);
    EXPECT_NEAR(geometricMean({1.0, 10.0, 100.0}), 10.0, 1e-9);
}

TEST(RelativeError, Basics)
{
    EXPECT_DOUBLE_EQ(relativeError(110.0, 100.0), 0.1);
    EXPECT_DOUBLE_EQ(relativeError(90.0, 100.0), 0.1);
    EXPECT_DOUBLE_EQ(relativeError(-90.0, -100.0), 0.1);
}

} // namespace
} // namespace util
} // namespace quetzal
