/**
 * @file
 * Tests for util::Rng determinism and distribution sanity.
 */

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/random.hpp"
#include "util/stats.hpp"

namespace quetzal {
namespace util {
namespace {

TEST(Rng, SameSeedSameSequence)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(123);
    Rng b(124);
    int equal = 0;
    for (int i = 0; i < 1000; ++i) {
        if (a() == b())
            ++equal;
    }
    EXPECT_LT(equal, 5);
}

TEST(Rng, Uniform01InRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform01();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRespectsBounds)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, UniformIntInclusiveBounds)
{
    Rng rng(7);
    bool sawLo = false;
    bool sawHi = false;
    for (int i = 0; i < 20000; ++i) {
        const auto v = rng.uniformInt(0, 7);
        ASSERT_GE(v, 0);
        ASSERT_LE(v, 7);
        sawLo = sawLo || v == 0;
        sawHi = sawHi || v == 7;
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Rng, BernoulliEdgeCases)
{
    Rng rng(9);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
    }
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(9);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(11);
    RunningStats stats;
    for (int i = 0; i < 100000; ++i)
        stats.add(rng.exponential(4.0));
    EXPECT_NEAR(stats.mean(), 4.0, 0.1);
    EXPECT_GT(stats.min(), 0.0);
}

TEST(Rng, NormalMoments)
{
    Rng rng(13);
    RunningStats stats;
    for (int i = 0; i < 100000; ++i)
        stats.add(rng.normal(2.0, 3.0));
    EXPECT_NEAR(stats.mean(), 2.0, 0.1);
    EXPECT_NEAR(stats.stddev(), 3.0, 0.1);
}

TEST(Rng, LognormalMedian)
{
    Rng rng(17);
    std::vector<double> samples;
    for (int i = 0; i < 50001; ++i)
        samples.push_back(rng.lognormal(std::log(10.0), 0.9));
    std::sort(samples.begin(), samples.end());
    // Median of exp(N(mu, sigma)) is exp(mu).
    EXPECT_NEAR(samples[samples.size() / 2], 10.0, 0.5);
}

TEST(Rng, ForkDecorrelates)
{
    Rng parent(21);
    Rng child = parent.fork();
    int equal = 0;
    for (int i = 0; i < 1000; ++i) {
        if (parent() == child())
            ++equal;
    }
    EXPECT_LT(equal, 5);
}

} // namespace
} // namespace util
} // namespace quetzal
