/**
 * @file
 * Tests for util::RingBuffer, including property-style sweeps
 * against a std::deque reference model.
 */

#include <deque>
#include <string>

#include <gtest/gtest.h>

#include "util/random.hpp"
#include "util/ring_buffer.hpp"

namespace quetzal {
namespace util {
namespace {

TEST(RingBuffer, PushPopFifoOrder)
{
    RingBuffer<int> buffer(4);
    EXPECT_TRUE(buffer.pushBack(1));
    EXPECT_TRUE(buffer.pushBack(2));
    EXPECT_TRUE(buffer.pushBack(3));
    EXPECT_EQ(buffer.popFront(), 1);
    EXPECT_EQ(buffer.popFront(), 2);
    EXPECT_EQ(buffer.popFront(), 3);
    EXPECT_TRUE(buffer.empty());
}

TEST(RingBuffer, RejectsWhenFull)
{
    RingBuffer<int> buffer(2);
    EXPECT_TRUE(buffer.pushBack(1));
    EXPECT_TRUE(buffer.pushBack(2));
    EXPECT_TRUE(buffer.full());
    EXPECT_FALSE(buffer.pushBack(3));
    EXPECT_EQ(buffer.size(), 2u);
    EXPECT_EQ(buffer.front(), 1);
    EXPECT_EQ(buffer.back(), 2);
}

TEST(RingBuffer, WrapAroundPreservesOrder)
{
    RingBuffer<int> buffer(3);
    buffer.pushBack(1);
    buffer.pushBack(2);
    buffer.pushBack(3);
    EXPECT_EQ(buffer.popFront(), 1);
    buffer.pushBack(4);
    EXPECT_EQ(buffer.at(0), 2);
    EXPECT_EQ(buffer.at(1), 3);
    EXPECT_EQ(buffer.at(2), 4);
}

TEST(RingBuffer, RemoveAtMiddleKeepsOrder)
{
    RingBuffer<std::string> buffer(5);
    for (const char *s : {"a", "b", "c", "d"})
        buffer.pushBack(s);
    EXPECT_EQ(buffer.removeAt(1), "b");
    EXPECT_EQ(buffer.size(), 3u);
    EXPECT_EQ(buffer.at(0), "a");
    EXPECT_EQ(buffer.at(1), "c");
    EXPECT_EQ(buffer.at(2), "d");
}

TEST(RingBuffer, ClearEmpties)
{
    RingBuffer<int> buffer(3);
    buffer.pushBack(1);
    buffer.clear();
    EXPECT_TRUE(buffer.empty());
    EXPECT_TRUE(buffer.pushBack(9));
    EXPECT_EQ(buffer.front(), 9);
}

/**
 * Property sweep: random operations mirrored against std::deque;
 * the ring buffer must agree on every observable at every step.
 */
class RingBufferProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RingBufferProperty, AgreesWithDequeModel)
{
    Rng rng(GetParam());
    const std::size_t capacity = 1 + rng.uniformInt(1, 8);
    RingBuffer<int> buffer(capacity);
    std::deque<int> model;

    for (int step = 0; step < 2000; ++step) {
        const auto op = rng.uniformInt(0, 3);
        if (op <= 1) {
            const int value = static_cast<int>(rng.uniformInt(0, 1000));
            const bool pushed = buffer.pushBack(value);
            EXPECT_EQ(pushed, model.size() < capacity);
            if (pushed)
                model.push_back(value);
        } else if (op == 2 && !model.empty()) {
            EXPECT_EQ(buffer.popFront(), model.front());
            model.pop_front();
        } else if (op == 3 && !model.empty()) {
            const auto index = static_cast<std::size_t>(
                rng.uniformInt(0, static_cast<std::int64_t>(
                                       model.size() - 1)));
            EXPECT_EQ(buffer.removeAt(index), model[index]);
            model.erase(model.begin() +
                        static_cast<std::ptrdiff_t>(index));
        }
        ASSERT_EQ(buffer.size(), model.size());
        for (std::size_t i = 0; i < model.size(); ++i)
            ASSERT_EQ(buffer.at(i), model[i]);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RingBufferProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

} // namespace
} // namespace util
} // namespace quetzal
