/**
 * @file
 * Unit tests for SmallVec, the inline-storage vector the scheduling
 * hot path uses for per-decision option lists: inline/heap
 * transitions, copy/move semantics, and std::vector comparison.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <numeric>
#include <vector>

#include "util/small_vec.hpp"

namespace quetzal {
namespace util {
namespace {

using Vec4 = SmallVec<std::size_t, 4>;

TEST(SmallVec, StaysInlineUpToCapacity)
{
    Vec4 v;
    EXPECT_TRUE(v.empty());
    EXPECT_EQ(v.capacity(), 4u);
    for (std::size_t i = 0; i < 4; ++i)
        v.push_back(i);
    EXPECT_EQ(v.size(), 4u);
    EXPECT_EQ(v.capacity(), 4u); // no heap spill yet
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(v[i], i);
}

TEST(SmallVec, SpillsToHeapAndKeepsContents)
{
    Vec4 v;
    for (std::size_t i = 0; i < 20; ++i)
        v.push_back(i * 3);
    EXPECT_EQ(v.size(), 20u);
    EXPECT_GE(v.capacity(), 20u);
    for (std::size_t i = 0; i < 20; ++i)
        EXPECT_EQ(v[i], i * 3);
}

TEST(SmallVec, CountValueConstructor)
{
    Vec4 v(6, 9u);
    EXPECT_EQ(v.size(), 6u);
    for (std::size_t i = 0; i < 6; ++i)
        EXPECT_EQ(v[i], 9u);
}

TEST(SmallVec, InitializerList)
{
    const Vec4 v{1, 2, 3};
    EXPECT_EQ(v.size(), 3u);
    EXPECT_EQ(v, (std::vector<std::size_t>{1, 2, 3}));
}

TEST(SmallVec, ResizeZeroInitializesNewElements)
{
    Vec4 v{7, 7};
    v.resize(5);
    EXPECT_EQ(v.size(), 5u);
    EXPECT_EQ(v[0], 7u);
    EXPECT_EQ(v[1], 7u);
    EXPECT_EQ(v[2], 0u);
    EXPECT_EQ(v[4], 0u);
    v.resize(1);
    EXPECT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0], 7u);
}

TEST(SmallVec, AssignReplacesContents)
{
    Vec4 v{1, 2, 3};
    v.assign(8, 5u);
    EXPECT_EQ(v.size(), 8u);
    for (std::size_t i = 0; i < 8; ++i)
        EXPECT_EQ(v[i], 5u);
}

TEST(SmallVec, CopyIsIndependent)
{
    Vec4 a;
    for (std::size_t i = 0; i < 10; ++i) // force heap storage
        a.push_back(i);
    Vec4 b(a);
    EXPECT_EQ(a, b);
    b[0] = 99;
    EXPECT_EQ(a[0], 0u);
    a = b;
    EXPECT_EQ(a[0], 99u);
}

TEST(SmallVec, MoveStealsHeapAndEmptiesDonor)
{
    Vec4 a;
    for (std::size_t i = 0; i < 10; ++i)
        a.push_back(i);
    Vec4 b(std::move(a));
    EXPECT_EQ(b.size(), 10u);
    EXPECT_EQ(b[9], 9u);
    EXPECT_TRUE(a.empty()); // moved-from is empty and reusable
    a.push_back(42);
    EXPECT_EQ(a.size(), 1u);
    EXPECT_EQ(a[0], 42u);
}

TEST(SmallVec, MoveOfInlineVectorCopiesElements)
{
    Vec4 a{1, 2};
    Vec4 b;
    b = std::move(a);
    EXPECT_EQ(b.size(), 2u);
    EXPECT_EQ(b[1], 2u);
    EXPECT_TRUE(a.empty());
}

TEST(SmallVec, IterationAndAccumulate)
{
    Vec4 v;
    for (std::size_t i = 1; i <= 6; ++i)
        v.push_back(i);
    const std::size_t sum =
        std::accumulate(v.begin(), v.end(), std::size_t{0});
    EXPECT_EQ(sum, 21u);
}

TEST(SmallVec, ComparisonOperators)
{
    const Vec4 a{1, 2, 3};
    const Vec4 b{1, 2, 3};
    const Vec4 c{1, 2, 4};
    const Vec4 shorter{1, 2};
    EXPECT_TRUE(a == b);
    EXPECT_TRUE(a != c);
    EXPECT_TRUE(a != shorter);
    EXPECT_EQ(std::vector<std::size_t>({1, 2, 3}), a);
}

TEST(SmallVec, ClearKeepsStorage)
{
    Vec4 v;
    for (std::size_t i = 0; i < 12; ++i)
        v.push_back(i);
    const std::size_t cap = v.capacity();
    v.clear();
    EXPECT_TRUE(v.empty());
    EXPECT_EQ(v.capacity(), cap);
}

} // namespace
} // namespace util
} // namespace quetzal
