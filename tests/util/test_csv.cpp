/**
 * @file
 * Tests for the CSV reader/writer.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "util/csv.hpp"

namespace quetzal {
namespace util {
namespace {

TEST(Csv, ParsesRowsSkippingCommentsAndBlanks)
{
    std::istringstream in(
        "# header comment\n"
        "1, 2.5 ,three\n"
        "\n"
        "   \n"
        "4,5,six\n");
    const auto rows = readCsv(in);
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0], (CsvRow{"1", "2.5", "three"}));
    EXPECT_EQ(rows[1], (CsvRow{"4", "5", "six"}));
}

TEST(Csv, TrimsWhitespace)
{
    std::istringstream in("  a ,\tb\t, c \r\n");
    const auto rows = readCsv(in);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0], (CsvRow{"a", "b", "c"}));
}

TEST(Csv, WriterRoundTrip)
{
    std::ostringstream out;
    CsvWriter writer(out);
    writer.comment("test");
    writer.row(CsvRow{"x", "y"});
    writer.row(std::vector<double>{1.5, -2.0});

    std::istringstream in(out.str());
    const auto rows = readCsv(in);
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0], (CsvRow{"x", "y"}));
    EXPECT_DOUBLE_EQ(parseDouble(rows[1][0]), 1.5);
    EXPECT_DOUBLE_EQ(parseDouble(rows[1][1]), -2.0);
}

TEST(Csv, ParseNumbers)
{
    EXPECT_DOUBLE_EQ(parseDouble("3.25e-2"), 0.0325);
    EXPECT_EQ(parseInt("-42"), -42);
}

TEST(CsvDeathTest, MalformedNumberIsFatal)
{
    EXPECT_EXIT(parseDouble("12x"), ::testing::ExitedWithCode(1),
                "malformed");
    EXPECT_EXIT(parseInt("4.5"), ::testing::ExitedWithCode(1),
                "malformed");
}

} // namespace
} // namespace util
} // namespace quetzal
