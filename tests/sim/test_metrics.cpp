/**
 * @file
 * Tests for metrics derivations.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "sim/metrics.hpp"

namespace quetzal {
namespace sim {
namespace {

Metrics
sample()
{
    Metrics m;
    m.interestingInputsNominal = 200;
    m.interestingCaptured = 150;
    m.iboDropsInteresting = 30;
    m.fnDiscards = 10;
    m.unprocessedInteresting = 10;
    m.txInterestingHq = 60;
    m.txInterestingLq = 40;
    m.txUninterestingHq = 5;
    m.txUninterestingLq = 3;
    return m;
}

TEST(Metrics, DiscardAccounting)
{
    const Metrics m = sample();
    EXPECT_EQ(m.interestingDiscardedTotal(), 50u);
    EXPECT_DOUBLE_EQ(m.interestingDiscardedPct(), 25.0);
    EXPECT_DOUBLE_EQ(m.iboDiscardedPct(), 20.0);
    EXPECT_DOUBLE_EQ(m.fnDiscardedPct(), 5.0);
    EXPECT_EQ(m.interestingMissedAtCapture(), 50u);
}

TEST(Metrics, TransmissionAccounting)
{
    const Metrics m = sample();
    EXPECT_EQ(m.txInterestingTotal(), 100u);
    EXPECT_DOUBLE_EQ(m.highQualityShare(), 0.6);
}

TEST(Metrics, ZeroDenominatorsAreSafe)
{
    Metrics m;
    EXPECT_DOUBLE_EQ(m.interestingDiscardedPct(), 0.0);
    EXPECT_DOUBLE_EQ(m.highQualityShare(), 0.0);
    EXPECT_EQ(m.interestingMissedAtCapture(), 0u);
}

TEST(Metrics, ReportMentionsKeyFigures)
{
    std::ostringstream out;
    sample().printReport(out, "sample-run");
    const std::string text = out.str();
    EXPECT_NE(text.find("sample-run"), std::string::npos);
    EXPECT_NE(text.find("interesting discarded: 50"),
              std::string::npos);
    EXPECT_NE(text.find("HQ 60"), std::string::npos);
}

} // namespace
} // namespace sim
} // namespace quetzal
