/**
 * @file
 * Death tests for the zero-progress guards: a malformed device or
 * experiment configuration must abort with a diagnostic instead of
 * spinning the simulation loop forever. The scenarios construct a
 * storage element too small to fund a single tick of work but large
 * enough to pass the restart threshold, with free save/restore — the
 * phase machine then cycles Running -> CheckpointSave -> Recharging
 * -> Restoring without consuming time.
 */

#include <gtest/gtest.h>

#include "app/person_detection.hpp"
#include "baselines/controllers.hpp"
#include "sim/simulator.hpp"

namespace quetzal {
namespace sim {
namespace {

/**
 * Apollo4, except: a ~4 nJ storage element (cannot fund one tick of
 * any task, yet starts above the restart threshold) and zero-cost
 * checkpointing (the phase transitions consume no ticks).
 */
app::DeviceProfile
unfundableProfile()
{
    app::DeviceProfile profile = app::apollo4Device();
    profile.storage.capacitance = 1e-9;
    profile.checkpoint.saveTicks = 0;
    profile.checkpoint.restoreTicks = 0;
    return profile;
}

using DeathPathDeathTest = ::testing::Test;

TEST(DeathPathDeathTest, DeviceAdvancePanicsInsteadOfSpinning)
{
    const auto watts = energy::PowerTrace::constant(1e-3);
    Device device(unfundableProfile(), watts);
    device.startTask(10e-3, 100);
    EXPECT_DEATH((void)device.advance(0, 10'000),
                 "Device::advance made no time progress");
}

TEST(DeathPathDeathTest, StartTaskPreconditionsPanic)
{
    const auto watts = energy::PowerTrace::constant(50e-3);
    Device device(app::apollo4Device(), watts);
    EXPECT_DEATH(device.startTask(0.0, 100), "non-positive cost");
    EXPECT_DEATH(device.startTask(10e-3, 0), "non-positive cost");
    device.startTask(10e-3, 500);
    EXPECT_DEATH(device.startTask(10e-3, 500),
                 "while a task is active");
}

TEST(DeathPathDeathTest, SimulatorRunDiesOnMalformedDeviceProfile)
{
    // End-to-end: the same unfundable profile driven by the full
    // simulation loop. The first job the controller starts trips the
    // guard from inside Simulator::run — the run aborts instead of
    // hanging the experiment.
    core::TaskSystem system;
    const app::DeviceProfile profile = unfundableProfile();
    const app::ApplicationModel appModel =
        app::buildPersonDetectionApp(system, profile);
    const auto controller = baselines::makeNoAdaptController();
    const auto watts = energy::PowerTrace::constant(1e-3);
    const trace::EventTrace events({{500, 10'000, true}});

    SimulationConfig cfg;
    cfg.drainTicks = 30'000;
    Simulator sim(cfg, profile, appModel, system, *controller, watts,
                  events);
    EXPECT_DEATH((void)sim.run(), "no time progress");
}

TEST(DeathPathDeathTest, SimulatorRejectsMalformedConfig)
{
    core::TaskSystem system;
    const app::DeviceProfile profile = app::apollo4Device();
    const app::ApplicationModel appModel =
        app::buildPersonDetectionApp(system, profile);
    const auto controller = baselines::makeNoAdaptController();
    const auto watts = energy::PowerTrace::constant(10e-3);
    const trace::EventTrace events({{500, 1'000, true}});

    auto build = [&](SimulationConfig cfg) {
        Simulator sim(cfg, profile, appModel, system, *controller,
                      watts, events);
    };
    SimulationConfig zeroPeriod;
    zeroPeriod.capturePeriod = 0;
    EXPECT_EXIT(build(zeroPeriod), ::testing::ExitedWithCode(1),
                "capture period must be positive");

    SimulationConfig negativeJitter;
    negativeJitter.executionJitterSigma = -0.5;
    EXPECT_EXIT(build(negativeJitter), ::testing::ExitedWithCode(1),
                "jitter sigma must be non-negative");
}

} // namespace
} // namespace sim
} // namespace quetzal
