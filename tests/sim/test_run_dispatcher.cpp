/**
 * @file
 * RunRequest / RunDispatcher: the single front door every entry
 * point (CLI, figures, tests) routes runs through. The built-in
 * experiment-shaped handlers must reproduce the direct
 * ParallelRunner results exactly, and unrouted kinds must fail fast
 * and name the installer.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/runner.hpp"

namespace {

using namespace quetzal;

sim::ExperimentConfig
smallConfig(std::uint64_t seed = 42)
{
    sim::ExperimentConfig config;
    config.eventCount = 40;
    config.seed = seed;
    return config;
}

void
expectSameMetrics(const sim::Metrics &a, const sim::Metrics &b)
{
    EXPECT_EQ(a.jobsCompleted, b.jobsCompleted);
    EXPECT_EQ(a.iboDropsInteresting, b.iboDropsInteresting);
    EXPECT_EQ(a.txInterestingHq, b.txInterestingHq);
    EXPECT_EQ(a.powerFailures, b.powerFailures);
    EXPECT_EQ(a.simulatedTicks, b.simulatedTicks);
}

TEST(RunDispatcher, RunKindNamesAreStable)
{
    EXPECT_STREQ(sim::runKindName(sim::RunKind::Experiment),
                 "experiment");
    EXPECT_STREQ(sim::runKindName(sim::RunKind::Ensemble), "ensemble");
    EXPECT_STREQ(sim::runKindName(sim::RunKind::Batch), "batch");
    EXPECT_STREQ(sim::runKindName(sim::RunKind::Scenario), "scenario");
    EXPECT_STREQ(sim::runKindName(sim::RunKind::Fleet), "fleet");
}

TEST(RunDispatcher, ExperimentKindMatchesDirectRun)
{
    sim::RunRequest request;
    request.kind = sim::RunKind::Experiment;
    request.config = smallConfig();
    request.jobs = 1;

    const sim::RunOutcome outcome = sim::RunDispatcher().run(request);
    EXPECT_EQ(outcome.exitCode, 0);
    ASSERT_EQ(outcome.metrics.size(), 1u);

    const sim::Metrics direct = sim::runExperiment(smallConfig());
    expectSameMetrics(outcome.metrics.front(), direct);
}

TEST(RunDispatcher, EnsembleKindMatchesRunSeeds)
{
    sim::RunRequest request;
    request.kind = sim::RunKind::Ensemble;
    request.config = smallConfig();
    request.seeds = {1, 2, 3};
    request.jobs = 2;

    const sim::RunOutcome outcome = sim::RunDispatcher().run(request);
    EXPECT_EQ(outcome.exitCode, 0);
    ASSERT_EQ(outcome.metrics.size(), 3u);

    sim::ParallelRunner runner(1);
    const std::vector<sim::Metrics> direct =
        runner.runSeeds(smallConfig(), {1, 2, 3});
    for (std::size_t i = 0; i < direct.size(); ++i)
        expectSameMetrics(outcome.metrics[i], direct[i]);
}

TEST(RunDispatcher, BatchKindPreservesSubmissionOrder)
{
    sim::RunRequest request;
    request.kind = sim::RunKind::Batch;
    request.batch = {smallConfig(5), smallConfig(6), smallConfig(7)};
    request.jobs = 3;

    const sim::RunOutcome outcome = sim::RunDispatcher().run(request);
    ASSERT_EQ(outcome.metrics.size(), 3u);

    for (std::size_t i = 0; i < request.batch.size(); ++i) {
        const sim::Metrics direct =
            sim::runExperiment(request.batch[i]);
        expectSameMetrics(outcome.metrics[i], direct);
    }
}

TEST(RunDispatcher, UnroutedKindPanicsNamingTheInstaller)
{
    sim::RunDispatcher dispatcher;
    EXPECT_FALSE(dispatcher.hasHandler(sim::RunKind::Scenario));

    sim::RunRequest request;
    request.kind = sim::RunKind::Scenario;
    request.scenarioPath = "unused.json";
    EXPECT_DEATH((void)dispatcher.run(request),
                 "installRunHandlers");
}

TEST(RunDispatcher, SetHandlerReplacesAndReceivesTheRequest)
{
    sim::RunDispatcher dispatcher;
    dispatcher.setHandler(
        sim::RunKind::Fleet, [](const sim::RunRequest &request) {
            sim::RunOutcome outcome;
            outcome.exitCode =
                request.scenarioPath == "fleet.json" ? 0 : 9;
            return outcome;
        });
    ASSERT_TRUE(dispatcher.hasHandler(sim::RunKind::Fleet));

    sim::RunRequest request;
    request.kind = sim::RunKind::Fleet;
    request.scenarioPath = "fleet.json";
    EXPECT_EQ(dispatcher.run(request).exitCode, 0);
    request.scenarioPath = "other.json";
    EXPECT_EQ(dispatcher.run(request).exitCode, 9);
}

} // namespace
