/**
 * @file
 * Tests for the intermittent device model, including the Eq. (1)
 * service-time property and equivalence with a naive per-tick
 * reference stepper.
 */

#include <gtest/gtest.h>

#include "sim/device.hpp"

namespace quetzal {
namespace sim {
namespace {

app::DeviceProfile
profile()
{
    return app::apollo4Device();
}

TEST(Device, StartsIdleAndFull)
{
    const auto watts = energy::PowerTrace::constant(10e-3);
    Device device(profile(), watts);
    EXPECT_EQ(device.phase(), DevicePhase::Idle);
    EXPECT_FALSE(device.taskActive());
    EXPECT_NEAR(device.energy(), device.store().capacity(), 1e-12);
}

TEST(Device, ComputeBoundTaskFinishesOnTime)
{
    // Harvest exceeds draw: the task takes exactly t_exe.
    const auto watts = energy::PowerTrace::constant(50e-3);
    Device device(profile(), watts);
    device.startTask(10e-3, 500);
    const Tick done = device.advance(0, 10'000);
    EXPECT_EQ(done, 500);
    EXPECT_FALSE(device.taskActive());
    EXPECT_EQ(device.stats().powerFailures, 0u);
    EXPECT_EQ(device.stats().activeTicks, 500);
}

TEST(Device, EnergyBoundTaskApproachesEq1)
{
    // Big task from a full store at low power: the end-to-end time
    // approaches E_exe / P_in (paper Eq. 1).
    const Watts pin = 5e-3;
    const Watts pexe = 100e-3;
    const Tick exeTicks = 20'000; // 2 J >> 0.126 J capacity
    const auto watts = energy::PowerTrace::constant(pin);
    Device device(profile(), watts);
    device.startTask(pexe, exeTicks);
    const Tick done = device.advance(0, 100'000'000);
    EXPECT_FALSE(device.taskActive());
    const double expected =
        ticksToSeconds(exeTicks) * pexe / pin; // 400 s
    // Within 20 %: checkpoint overheads and the initial full store
    // shift the exact value.
    EXPECT_NEAR(ticksToSeconds(done), expected, 0.2 * expected);
    EXPECT_GT(device.stats().powerFailures, 0u);
    EXPECT_GT(device.stats().rechargeTicks, 0);
}

TEST(Device, IdleHarvestsAndClampsAtCapacity)
{
    const auto watts = energy::PowerTrace::constant(10e-3);
    Device device(profile(), watts);
    device.drawInstantaneous(device.energy()); // empty it
    EXPECT_NEAR(device.energy(), 0.0, 1e-12);
    device.advance(0, 60'000); // 60 s of 10 mW minus sleep
    EXPECT_GT(device.energy(), 0.0);
    device.advance(60'000, 600'000'000);
    EXPECT_NEAR(device.energy(), device.store().capacity(), 1e-9);
}

TEST(Device, AdvanceStopsAtTaskCompletion)
{
    const auto watts = energy::PowerTrace::constant(50e-3);
    Device device(profile(), watts);
    device.startTask(10e-3, 123);
    const Tick done = device.advance(0, 1'000'000);
    EXPECT_EQ(done, 123);
}

TEST(Device, ZeroPowerNeverCompletesEnergyBoundTask)
{
    const auto watts = energy::PowerTrace::constant(0.0);
    Device device(profile(), watts);
    // Drain the store with a big task: it must stall forever.
    device.startTask(100e-3, 1'000'000);
    const Tick reached = device.advance(0, 10'000'000);
    EXPECT_EQ(reached, 10'000'000);
    EXPECT_TRUE(device.taskActive());
}

TEST(Device, InstantaneousDrawDuringRunTriggersCheckpoint)
{
    const auto watts = energy::PowerTrace::constant(1e-3);
    Device device(profile(), watts);
    device.startTask(10e-3, 5'000);
    device.advance(0, 100);
    ASSERT_EQ(device.phase(), DevicePhase::Running);
    device.drawInstantaneous(device.energy() + 1.0);
    EXPECT_EQ(device.phase(), DevicePhase::CheckpointSave);
}

TEST(Device, TaskCostConservation)
{
    // Accounting identity: initial + harvested = final + consumed,
    // approximated through the run (checkpoint + task + sleep draws).
    const Watts pin = 20e-3;
    const auto watts = energy::PowerTrace::constant(pin);
    Device device(profile(), watts);
    const Joules before = device.energy();
    device.startTask(100e-3, 1'000); // 0.1 J task
    const Tick done = device.advance(0, 10'000'000);
    const Joules harvested = pin * ticksToSeconds(done);
    const Joules consumed = before + harvested - device.energy();
    // Must at least cover the task energy, plus bounded overheads.
    EXPECT_GE(consumed, 0.1 - 1e-9);
    EXPECT_LE(consumed, 0.1 + 0.05);
}

/**
 * Reference stepper: literal 1 ms ticks, no batching. The batched
 * device must agree on completion time and stats.
 */
struct NaiveResult
{
    Tick completion = 0;
    std::uint64_t failures = 0;
};

NaiveResult
naiveRun(const app::DeviceProfile &dev, const energy::PowerTrace &watts,
         Watts taskPower, Tick exeTicks)
{
    energy::EnergyStorage store(dev.storage);
    NaiveResult result;
    Tick remaining = exeTicks;
    Tick now = 0;
    enum { Run, Save, Charge, Restore } phase = Run;
    Tick phaseLeft = 0;
    while (remaining > 0 && now < 100'000'000) {
        const Watts pin = watts.valueAt(now);
        switch (phase) {
          case Run: {
            const Joules need = energyOver(taskPower, 1);
            if (store.energy() < need) {
                phase = Save;
                phaseLeft = dev.checkpoint.saveTicks;
                break;
            }
            store.draw(need);
            store.harvest(energyOver(pin, 1));
            --remaining;
            ++now;
            break;
          }
          case Save:
            store.harvest(energyOver(pin, 1));
            store.draw(energyOver(dev.checkpoint.savePower, 1));
            ++now;
            if (--phaseLeft == 0) {
                ++result.failures;
                phase = Charge;
            }
            break;
          case Charge:
            store.harvest(energyOver(pin, 1));
            ++now;
            if (store.deficitToRestart() <= 0.0) {
                phase = Restore;
                phaseLeft = dev.checkpoint.restoreTicks;
            }
            break;
          case Restore:
            store.harvest(energyOver(pin, 1));
            store.draw(energyOver(dev.checkpoint.restorePower, 1));
            ++now;
            if (--phaseLeft == 0)
                phase = Run;
            break;
        }
    }
    result.completion = now;
    return result;
}

class DeviceEquivalence
    : public ::testing::TestWithParam<std::pair<double, double>>
{
};

TEST_P(DeviceEquivalence, BatchedMatchesNaiveStepper)
{
    const auto [pinMw, pexeMw] = GetParam();
    const auto watts = energy::PowerTrace::constant(pinMw * 1e-3);
    const Tick exeTicks = 3'000;

    Device device(profile(), watts);
    device.startTask(pexeMw * 1e-3, exeTicks);
    const Tick batched = device.advance(0, 100'000'000);

    const NaiveResult naive =
        naiveRun(profile(), watts, pexeMw * 1e-3, exeTicks);

    // The naive stepper interleaves harvest and draw within a tick
    // slightly differently (it requires the gross per-tick energy up
    // front where the batched engine funds the net), so completion
    // and failure counts agree to within a small per-cycle rounding.
    const double tolerance =
        std::max(5.0, 0.02 * static_cast<double>(naive.completion));
    EXPECT_NEAR(static_cast<double>(batched),
                static_cast<double>(naive.completion), tolerance);
    EXPECT_NEAR(static_cast<double>(device.stats().powerFailures),
                static_cast<double>(naive.failures),
                2.0 + 0.05 * static_cast<double>(naive.failures));
}

INSTANTIATE_TEST_SUITE_P(
    PowerPoints, DeviceEquivalence,
    ::testing::Values(std::make_pair(50.0, 10.0), // compute bound
                      std::make_pair(10.0, 10.0), // boundary
                      std::make_pair(5.0, 20.0),  // mild deficit
                      std::make_pair(2.0, 100.0), // deep deficit
                      std::make_pair(25.0, 100.0)));

TEST(DeviceDeathTest, StartWhileActivePanics)
{
    const auto watts = energy::PowerTrace::constant(10e-3);
    Device device(profile(), watts);
    device.startTask(10e-3, 100);
    EXPECT_DEATH(device.startTask(10e-3, 100), "active");
}

TEST(DeviceDeathTest, NonPositiveCostPanics)
{
    const auto watts = energy::PowerTrace::constant(10e-3);
    Device device(profile(), watts);
    EXPECT_DEATH(device.startTask(0.0, 100), "cost");
    EXPECT_DEATH(device.startTask(1e-3, 0), "cost");
}

TEST(DeviceDeathTest, ZeroProgressCyclePanics)
{
    // Malformed profile: free checkpoints plus a task whose per-tick
    // energy (100 W x 1 ms = 0.1 J) exceeds the restart energy
    // (~0.026 J), so once depleted the device cycles Restoring ->
    // Running (fails immediately) -> CheckpointSave -> Recharging
    // without ever advancing time. The guard must panic instead of
    // spinning forever.
    app::DeviceProfile broken = profile();
    broken.checkpoint.saveTicks = 0;
    broken.checkpoint.restoreTicks = 0;
    const auto watts = energy::PowerTrace::constant(1e-3);
    Device device(broken, watts);
    device.drawInstantaneous(device.energy()); // deplete the store
    device.startTask(100.0, 100);
    EXPECT_DEATH(device.advance(0, 1'000'000), "no time progress");
}

} // namespace
} // namespace sim
} // namespace quetzal
