/**
 * @file
 * Unit tests for the discrete-event engine's monotone event queue:
 * (when, kind, seq) ordering, the monotonicity guard, and reset.
 */

#include <gtest/gtest.h>

#include <limits>

#include "sim/event_queue.hpp"

namespace quetzal {
namespace sim {
namespace {

TEST(EventQueue, PopsInTimeOrder)
{
    EventQueue q;
    q.push(30, EventKind::CaptureArrival);
    q.push(10, EventKind::CaptureArrival);
    q.push(20, EventKind::CaptureArrival);
    EXPECT_EQ(q.size(), 3u);
    EXPECT_EQ(q.pop().when, 10);
    EXPECT_EQ(q.pop().when, 20);
    EXPECT_EQ(q.pop().when, 30);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, SameTickOrdersByKindPriority)
{
    // Device-internal energy events resolve before system-level
    // arrivals at the same tick — the advance-then-dispatch order
    // both engines share.
    EventQueue q;
    q.push(5, EventKind::CaptureArrival);
    q.push(5, EventKind::FaultWindowEdge);
    q.push(5, EventKind::StorageThreshold);
    q.push(5, EventKind::PowerSegmentBreak);
    EXPECT_EQ(q.pop().kind, EventKind::PowerSegmentBreak);
    EXPECT_EQ(q.pop().kind, EventKind::StorageThreshold);
    EXPECT_EQ(q.pop().kind, EventKind::FaultWindowEdge);
    EXPECT_EQ(q.pop().kind, EventKind::CaptureArrival);
}

TEST(EventQueue, SameTickSameKindOrdersByInsertion)
{
    EventQueue q;
    const std::uint64_t first = q.push(7, EventKind::CaptureArrival);
    const std::uint64_t second = q.push(7, EventKind::CaptureArrival);
    EXPECT_LT(first, second);
    EXPECT_EQ(q.pop().seq, first);
    EXPECT_EQ(q.pop().seq, second);
}

TEST(EventQueue, TopPeeksWithoutRemoving)
{
    EventQueue q;
    q.push(42, EventKind::TaskCompletion);
    EXPECT_EQ(q.top().when, 42);
    EXPECT_EQ(q.size(), 1u);
    EXPECT_EQ(q.pop().when, 42);
}

TEST(EventQueue, TracksLastPoppedTick)
{
    EventQueue q;
    EXPECT_EQ(q.lastPoppedTick(), std::numeric_limits<Tick>::min());
    q.push(10, EventKind::CaptureArrival);
    q.push(25, EventKind::CaptureArrival);
    (void)q.pop();
    EXPECT_EQ(q.lastPoppedTick(), 10);
    (void)q.pop();
    EXPECT_EQ(q.lastPoppedTick(), 25);
}

TEST(EventQueue, ClearResetsMonotonicityFloor)
{
    EventQueue q;
    q.push(100, EventKind::CaptureArrival);
    (void)q.pop();
    q.clear();
    // A fresh run may start earlier than the previous run ended.
    q.push(1, EventKind::CaptureArrival);
    EXPECT_EQ(q.pop().when, 1);
}

TEST(EventQueue, InterleavedPushPopStaysOrdered)
{
    EventQueue q;
    q.push(10, EventKind::CaptureArrival);
    q.push(40, EventKind::CaptureArrival);
    EXPECT_EQ(q.pop().when, 10);
    // Scheduling between the last pop and the next pending event is
    // the engine's steady state (device wakes land before the next
    // capture).
    q.push(20, EventKind::TaskCompletion);
    q.push(30, EventKind::StorageThreshold);
    EXPECT_EQ(q.pop().when, 20);
    EXPECT_EQ(q.pop().when, 30);
    EXPECT_EQ(q.pop().when, 40);
}

TEST(EventQueueDeathTest, PopOnEmptyFatal)
{
    EventQueue q;
    EXPECT_DEATH((void)q.pop(), "empty");
}

TEST(EventQueueDeathTest, TopOnEmptyFatal)
{
    EventQueue q;
    EXPECT_DEATH((void)q.top(), "empty");
}

TEST(EventQueueDeathTest, SchedulingIntoThePastFatal)
{
    EventQueue q;
    q.push(50, EventKind::CaptureArrival);
    (void)q.pop();
    q.push(10, EventKind::CaptureArrival);
    EXPECT_DEATH((void)q.pop(), "non-monotone");
}

} // namespace
} // namespace sim
} // namespace quetzal
