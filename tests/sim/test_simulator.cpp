/**
 * @file
 * Tests for the simulator loop: capture pipeline, job execution,
 * spawn semantics and conservation invariants.
 */

#include <gtest/gtest.h>

#include "app/person_detection.hpp"
#include "baselines/controllers.hpp"
#include "sim/simulator.hpp"
#include "trace/event_generator.hpp"

namespace quetzal {
namespace sim {
namespace {

struct Rig
{
    core::TaskSystem system;
    app::ApplicationModel appModel;
    std::unique_ptr<core::Controller> controller;
    energy::PowerTrace watts;
    trace::EventTrace events;

    Rig(std::unique_ptr<core::Controller> ctrl, Watts power,
        trace::EventTrace eventTrace)
        : appModel(app::buildPersonDetectionApp(system,
                                                app::apollo4Device())),
          controller(std::move(ctrl)),
          watts(energy::PowerTrace::constant(power)),
          events(std::move(eventTrace))
    {
    }
};

trace::EventTrace
singleEvent(Tick start, Tick duration, bool interesting)
{
    return trace::EventTrace({{start, duration, interesting}});
}

TEST(Simulator, QuietEnvironmentStoresNothing)
{
    Rig rig(baselines::makeNoAdaptController(), 50e-3,
            trace::EventTrace({{1'000'000, 1000, true}}));
    SimulationConfig cfg;
    cfg.drainTicks = 5'000;
    // Truncate: simulate only the first 100 s (event far away).
    rig.events = trace::EventTrace({{90'000, 1000, false}});
    Simulator sim(cfg, app::apollo4Device(), rig.appModel, rig.system,
                  *rig.controller, rig.watts, rig.events);
    const Metrics m = sim.run();
    EXPECT_GT(m.captures, 90u);
    EXPECT_EQ(m.storedInputs, 1u); // only the 1 s event frame
    EXPECT_EQ(m.interestingCaptured, 0u);
}

TEST(Simulator, InterestingEventFlowsToHqTransmission)
{
    // Plenty of power, one 5 s interesting event: all five inputs
    // should be classified and transmitted at high quality.
    Rig rig(baselines::makeNoAdaptController(), 200e-3,
            singleEvent(10'000, 5'000, true));
    SimulationConfig cfg;
    cfg.outcomeSeed = 5; // no misclassification draws fire at 3 % FN
    Simulator sim(cfg, app::apollo4Device(), rig.appModel, rig.system,
                  *rig.controller, rig.watts, rig.events);
    const Metrics m = sim.run();
    EXPECT_EQ(m.interestingCaptured, 5u);
    EXPECT_EQ(m.storedInputs, 5u);
    EXPECT_EQ(m.iboDropsInteresting, 0u);
    EXPECT_EQ(m.txInterestingHq + m.fnDiscards, 5u);
    EXPECT_EQ(m.txInterestingLq, 0u);
    EXPECT_EQ(m.unprocessedInteresting, 0u);
}

TEST(Simulator, OverflowDropsWhenBufferTiny)
{
    // Buffer of 1 with very low power: a long event must overflow.
    Rig rig(baselines::makeNoAdaptController(), 1e-3,
            singleEvent(5'000, 30'000, true));
    SimulationConfig cfg;
    cfg.bufferCapacity = 1;
    Simulator sim(cfg, app::apollo4Device(), rig.appModel, rig.system,
                  *rig.controller, rig.watts, rig.events);
    const Metrics m = sim.run();
    EXPECT_GT(m.iboDropsInteresting, 10u);
    // Conservation: every interesting capture is accounted once.
    EXPECT_EQ(m.interestingCaptured,
              m.iboDropsInteresting + m.fnDiscards + m.txInterestingHq +
                  m.txInterestingLq + m.unprocessedInteresting);
}

TEST(Simulator, ConservationHoldsAcrossControllers)
{
    const auto events =
        trace::EventGenerator(trace::EventGeneratorConfig::forPreset(
                                  trace::EnvironmentPreset::Crowded, 60,
                                  11))
            .generate();
    for (auto make : {baselines::makeNoAdaptController,
                      baselines::makeAlwaysDegradeController,
                      baselines::makeCatNapController}) {
        Rig rig(make(), 8e-3, events);
        SimulationConfig cfg;
        Simulator sim(cfg, app::apollo4Device(), rig.appModel,
                      rig.system, *rig.controller, rig.watts,
                      rig.events);
        const Metrics m = sim.run();
        EXPECT_EQ(m.interestingCaptured,
                  m.iboDropsInteresting + m.fnDiscards +
                      m.txInterestingHq + m.txInterestingLq +
                      m.unprocessedInteresting)
            << rig.controller->name();
        EXPECT_GT(m.jobsCompleted, 0u);
    }
}

TEST(Simulator, DegradedControllerSendsLowQuality)
{
    Rig rig(baselines::makeAlwaysDegradeController(), 200e-3,
            singleEvent(10'000, 5'000, true));
    SimulationConfig cfg;
    Simulator sim(cfg, app::apollo4Device(), rig.appModel, rig.system,
                  *rig.controller, rig.watts, rig.events);
    const Metrics m = sim.run();
    EXPECT_EQ(m.txInterestingHq, 0u);
    EXPECT_GT(m.txInterestingLq, 0u);
    EXPECT_EQ(m.degradedJobs, m.jobsCompleted);
}

TEST(Simulator, CaptureRateDegradationMissesEvents)
{
    // Fig. 2b mechanism: a 9 s event sampled at 5 s period yields at
    // most 2 captures of 9 nominal.
    Rig rig(baselines::makeNoAdaptController(), 200e-3,
            singleEvent(10'000, 9'000, true));
    SimulationConfig cfg;
    cfg.capturePeriod = 5'000;
    Simulator sim(cfg, app::apollo4Device(), rig.appModel, rig.system,
                  *rig.controller, rig.watts, rig.events);
    const Metrics m = sim.run();
    EXPECT_EQ(m.interestingInputsNominal, 9u);
    EXPECT_LE(m.interestingCaptured, 2u);
    EXPECT_GE(m.interestingMissedAtCapture(), 7u);
}

TEST(Simulator, SchedulerOverheadAccounted)
{
    Rig rig(baselines::makeQuetzalVariantController(
                baselines::SchedulerKind::EnergyAwareSjf),
            50e-3, singleEvent(10'000, 5'000, true));
    SimulationConfig cfg;
    cfg.schedulerOverheadSeconds = 0.01;
    cfg.schedulerOverheadEnergy = 1e-6;
    Simulator sim(cfg, app::apollo4Device(), rig.appModel, rig.system,
                  *rig.controller, rig.watts, rig.events);
    const Metrics m = sim.run();
    EXPECT_GT(m.schedulerOverheadSeconds, 0.0);
    EXPECT_GT(m.schedulerOverheadEnergy, 0.0);
    EXPECT_GT(m.jobsCompleted, 0u);
}

TEST(Simulator, InfiniteBufferNeverDrops)
{
    Rig rig(baselines::makeNoAdaptController(), 2e-3,
            singleEvent(5'000, 60'000, true));
    SimulationConfig cfg;
    cfg.infiniteBuffer = true;
    cfg.drainToEmpty = true;
    Simulator sim(cfg, app::apollo4Device(), rig.appModel, rig.system,
                  *rig.controller, rig.watts, rig.events);
    const Metrics m = sim.run();
    EXPECT_EQ(m.iboDropsInteresting, 0u);
    EXPECT_EQ(m.unprocessedInteresting, 0u);
    EXPECT_EQ(m.interestingCaptured,
              m.fnDiscards + m.txInterestingHq + m.txInterestingLq);
}

} // namespace
} // namespace sim
} // namespace quetzal
