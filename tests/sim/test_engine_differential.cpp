/**
 * @file
 * Differential tests: the discrete-event engine (event_core.cpp)
 * against the span-based tick engine over randomized experiment
 * draws. The two engines share every handler (capture processing,
 * job admission, task dispatch, completion) and differ only in how
 * they advance time, so the contract is exact: identical metrics and
 * a byte-identical serialized event stream for every configuration,
 * including faulted ones (fault timing consumes RNG draws, which is
 * where an ordering divergence would surface first).
 *
 * A second group pins the event engine's determinism across worker
 * counts, mirroring the tick engine's GoldenTrace contract: the
 * serialized ensemble trace of --jobs 1 and --jobs 4 executions must
 * match byte-for-byte.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "obs/trace_io.hpp"
#include "obs/trace_sink.hpp"
#include "sim/experiment.hpp"
#include "sim/runner.hpp"

namespace quetzal {
namespace sim {
namespace {

/** One run's observable timeline (obs stream + metrics), serialized. */
struct Fingerprint
{
    std::string bytes;
    std::uint64_t jobsCompleted = 0;
};

Fingerprint
runFingerprint(ExperimentConfig config, EngineKind engine)
{
    obs::VectorSink sink;
    config.sim.engine = engine;
    config.obsLevel = obs::ObsLevel::Full;
    config.obsSink = &sink;
    const Metrics m = runExperiment(config);

    std::ostringstream out;
    obs::writeJsonlHeader(out);
    obs::writeJsonl(out, sink.events(), 0);
    // Fold the metrics in as well: the trace alone would not notice a
    // divergence in a quantity no event carries (e.g. scheduler
    // overhead accounting).
    out << m.eventsTotal << ' ' << m.eventsInteresting << ' '
        << m.captures << ' ' << m.storedInputs << ' '
        << m.iboDropsInteresting << ' ' << m.iboDropsUninteresting
        << ' ' << m.fnDiscards << ' ' << m.fpPositives << ' '
        << m.txInterestingHq << ' ' << m.txInterestingLq << ' '
        << m.txUninterestingHq << ' ' << m.txUninterestingLq << ' '
        << m.jobsCompleted << ' ' << m.degradedJobs << ' '
        << m.iboPredictions << ' ' << m.powerFailures << ' '
        << m.checkpointSaves << ' ' << m.rechargeTicks << ' '
        << m.activeTicks << ' ' << m.rolledBackTicks << ' '
        << m.simulatedTicks << ' ' << m.schedulerOverheadSeconds
        << ' ' << m.schedulerOverheadEnergy << ' '
        << m.jobServiceSeconds.count() << ' '
        << m.jobServiceSeconds.sum() << ' '
        << m.predictionErrorSeconds.count() << ' '
        << m.predictionErrorSeconds.sum() << '\n';
    return {out.str(), m.jobsCompleted};
}

/** One randomized fault model; index 0 is the inert spec. */
fault::FaultSpec
drawFaultSpec(std::mt19937_64 &rng)
{
    fault::FaultSpec spec;
    spec.seed = rng() % 1000 + 1;
    switch (rng() % 6) {
    case 0: // inert: the clean path must agree too
        break;
    case 1:
        spec.measurement.biasWatts = 0.002;
        spec.measurement.noiseSigma = 0.1;
        break;
    case 2:
        spec.adc.flipMask = 0x04;
        spec.adc.stuckHighMask = 0x01;
        break;
    case 3:
        spec.powerTrace.dropoutsPerHour = 40.0;
        spec.powerTrace.dropoutSeconds = 2.0;
        spec.powerTrace.spikesPerHour = 20.0;
        spec.powerTrace.spikeSeconds = 1.0;
        spec.powerTrace.spikeFactor = 3.0;
        break;
    case 4:
        spec.arrivals.burstsPerHour = 30.0;
        spec.arrivals.burstSeconds = 3.0;
        spec.arrivals.captureJitterMs = 120;
        break;
    case 5:
        spec.execution.overrunProbability = 0.2;
        spec.execution.overrunFactor = 1.8;
        break;
    }
    return spec;
}

TEST(EngineDifferential, RandomizedDrawsMatchTickEngine)
{
    const trace::EnvironmentPreset presets[] = {
        trace::EnvironmentPreset::MoreCrowded,
        trace::EnvironmentPreset::Crowded,
        trace::EnvironmentPreset::LessCrowded,
        trace::EnvironmentPreset::Msp430Short,
    };
    const ControllerKind controllers[] = {
        ControllerKind::Quetzal,   ControllerKind::QuetzalFcfs,
        ControllerKind::QuetzalLcfs, ControllerKind::NoAdapt,
        ControllerKind::CatNap,    ControllerKind::Ideal,
    };

    std::mt19937_64 rng(20260807);
    std::uint64_t totalJobs = 0;
    for (int draw = 0; draw < 12; ++draw) {
        ExperimentConfig config;
        config.environment = presets[rng() % 4];
        config.controller = controllers[rng() % 6];
        config.eventCount = 10 + rng() % 30;
        config.seed = rng() % 10000 + 1;
        config.sim.bufferCapacity = 4 + rng() % 12;
        config.sim.drainTicks = 30 * kTicksPerSecond;
        config.faults = drawFaultSpec(rng);
        SCOPED_TRACE(testing::Message()
                     << "draw " << draw << " env="
                     << trace::environmentName(config.environment)
                     << " ctl=" << controllerKindName(config.controller)
                     << " events=" << config.eventCount << " seed="
                     << config.seed << " cap="
                     << config.sim.bufferCapacity
                     << " faults=" << (config.faults.inert() ? 0 : 1));

        const Fingerprint tick =
            runFingerprint(config, EngineKind::Tick);
        const Fingerprint event =
            runFingerprint(config, EngineKind::Event);
        EXPECT_EQ(tick.bytes, event.bytes);
        totalJobs += tick.jobsCompleted;
    }
    // Draws that never complete a job would vacuously agree; the
    // randomized battery must contain real work.
    EXPECT_GT(totalJobs, 100u);
}

TEST(EngineDifferential, ExecutionJitterPreservesRngOrder)
{
    // Per-task execution jitter draws from the run RNG on every
    // dispatch; any reordering of dispatch instants between the
    // engines desynchronizes the stream immediately.
    ExperimentConfig config;
    config.environment = trace::EnvironmentPreset::Crowded;
    config.eventCount = 30;
    config.seed = 11;
    config.sim.executionJitterSigma = 0.05;
    const Fingerprint tick = runFingerprint(config, EngineKind::Tick);
    const Fingerprint event = runFingerprint(config, EngineKind::Event);
    EXPECT_GT(tick.jobsCompleted, 0u);
    EXPECT_EQ(tick.bytes, event.bytes);
}

/** The GoldenTrace scenario shape, run on the event engine. */
std::string
eventEnsembleTrace(unsigned jobs)
{
    constexpr std::size_t kRuns = 2;
    std::vector<obs::VectorSink> sinks(kRuns);
    std::vector<ExperimentConfig> configs;
    configs.reserve(kRuns);
    for (std::size_t i = 0; i < kRuns; ++i) {
        ExperimentConfig config;
        config.controller = ControllerKind::Quetzal;
        config.environment = trace::EnvironmentPreset::Msp430Short;
        config.eventCount = 3;
        config.seed = i + 1;
        config.sim.bufferCapacity = 6;
        config.sim.drainTicks = 10 * kTicksPerSecond;
        config.sim.engine = EngineKind::Event;
        config.obsLevel = obs::ObsLevel::Full;
        config.obsSink = &sinks[i];
        configs.push_back(std::move(config));
    }

    ParallelRunner runner(jobs);
    (void)runner.runBatch(configs);

    std::ostringstream out;
    obs::writeJsonlHeader(out);
    for (std::size_t i = 0; i < sinks.size(); ++i)
        obs::writeJsonl(out, sinks[i].events(), i);
    return out.str();
}

TEST(EngineDifferential, EventTracesIdenticalAcrossJobCounts)
{
    const std::string serial = eventEnsembleTrace(1);
    const std::string parallel = eventEnsembleTrace(4);
    ASSERT_FALSE(serial.empty());
    EXPECT_EQ(serial, parallel);
}

TEST(EngineDifferential, EventEnsembleMatchesTickEnsemble)
{
    // The same ensemble on the tick engine serializes to the same
    // bytes — the cross-engine contract composes with the parallel
    // runner, not just with single runs.
    std::vector<obs::VectorSink> sinks(2);
    std::vector<ExperimentConfig> configs;
    for (std::size_t i = 0; i < 2; ++i) {
        ExperimentConfig config;
        config.controller = ControllerKind::Quetzal;
        config.environment = trace::EnvironmentPreset::Msp430Short;
        config.eventCount = 3;
        config.seed = i + 1;
        config.sim.bufferCapacity = 6;
        config.sim.drainTicks = 10 * kTicksPerSecond;
        config.sim.engine = EngineKind::Tick;
        config.obsLevel = obs::ObsLevel::Full;
        config.obsSink = &sinks[i];
        configs.push_back(std::move(config));
    }
    ParallelRunner runner(2);
    (void)runner.runBatch(configs);
    std::ostringstream tick;
    obs::writeJsonlHeader(tick);
    for (std::size_t i = 0; i < sinks.size(); ++i)
        obs::writeJsonl(tick, sinks[i].events(), i);

    EXPECT_EQ(tick.str(), eventEnsembleTrace(2));
}

} // namespace
} // namespace sim
} // namespace quetzal
