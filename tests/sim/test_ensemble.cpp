/**
 * @file
 * Tests for seed-ensemble aggregation.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "sim/ensemble.hpp"

namespace quetzal {
namespace sim {
namespace {

ExperimentConfig
smallConfig(ControllerKind kind)
{
    ExperimentConfig cfg;
    cfg.environment = trace::EnvironmentPreset::Crowded;
    cfg.eventCount = 80;
    cfg.controller = kind;
    return cfg;
}

TEST(Ensemble, AggregatesOverSeeds)
{
    const EnsembleResult r =
        runEnsemble(smallConfig(ControllerKind::Quetzal), 4);
    EXPECT_EQ(r.runs, 4u);
    EXPECT_EQ(r.discardedPct.count(), 4u);
    EXPECT_GT(r.jobsCompleted.mean(), 0.0);
    // Different seeds produce spread.
    EXPECT_GT(r.discardedPct.max(), r.discardedPct.min());
}

TEST(Ensemble, ExplicitSeedsMatchSingleRuns)
{
    auto cfg = smallConfig(ControllerKind::NoAdapt);
    const EnsembleResult r =
        runEnsemble(cfg, std::vector<std::uint64_t>{7});
    cfg.seed = 7;
    const Metrics single = runExperiment(cfg);
    EXPECT_EQ(r.runs, 1u);
    EXPECT_DOUBLE_EQ(r.discardedPct.mean(),
                     single.interestingDiscardedPct());
    EXPECT_DOUBLE_EQ(r.reportedInputs.mean(),
                     static_cast<double>(single.txInterestingTotal()));
}

TEST(Ensemble, QuetzalRobustAcrossSeeds)
{
    // The headline win is not a seed artifact: QZ's *worst* seed
    // discards less than NA's *best* seed.
    const EnsembleResult qz =
        runEnsemble(smallConfig(ControllerKind::Quetzal), 5);
    const EnsembleResult na =
        runEnsemble(smallConfig(ControllerKind::NoAdapt), 5);
    EXPECT_LT(qz.discardedPct.max(), na.discardedPct.min());
}

TEST(Ensemble, SummaryMentionsLabel)
{
    const EnsembleResult r =
        runEnsemble(smallConfig(ControllerKind::Quetzal), 2);
    std::ostringstream out;
    r.printSummary(out, "qz-test");
    EXPECT_NE(out.str().find("qz-test"), std::string::npos);
    EXPECT_NE(out.str().find("2 seeds"), std::string::npos);
}

TEST(EnsembleDeathTest, EmptySeedsFatal)
{
    EXPECT_EXIT(runEnsemble(smallConfig(ControllerKind::Quetzal),
                            std::vector<std::uint64_t>{}),
                ::testing::ExitedWithCode(1), "seed");
}

} // namespace
} // namespace sim
} // namespace quetzal
