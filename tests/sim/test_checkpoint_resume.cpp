/**
 * @file
 * Checkpoint/restore golden tests (DESIGN.md section 16).
 *
 * The contract under test: a checkpointing run is byte-identical to
 * a clean one (saving observes, never perturbs), and a run resumed
 * from any checkpoint blob replays the uninterrupted run's
 * observable timeline exactly — same final metrics, and an obs event
 * stream equal to the straight run's suffix from the boundary tick
 * on. Because the checkpoint hook fires before any of the boundary
 * instant's events, a stopped segment's stream concatenates with the
 * resumed segment's into the straight run's stream byte-for-byte.
 *
 * The QZCK archive framing (magic/version/CRC/fingerprint) is
 * exercised at the bottom: corruption and version skew must fail
 * loudly, and the fingerprint must separate configurations while
 * ignoring the engine kind (both engines are byte-identical).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace_io.hpp"
#include "obs/trace_sink.hpp"
#include "sim/checkpoint.hpp"
#include "sim/experiment.hpp"
#include "sim/runner.hpp"

#ifndef QUETZAL_SIM_GOLDEN_DIR
#error "build must define QUETZAL_SIM_GOLDEN_DIR"
#endif

namespace quetzal {
namespace sim {
namespace {

/** One collected checkpoint: the state blob and its boundary tick. */
using Snapshot = std::pair<std::string, Tick>;

/** Everything observable about one run. */
struct RunCapture
{
    Metrics metrics;
    std::vector<obs::Event> events;
    std::vector<Snapshot> checkpoints;
};

/** Small but non-trivial experiment: jobs, drops, adaptation. */
ExperimentConfig
baseConfig(std::uint64_t seed = 42)
{
    ExperimentConfig config;
    config.eventCount = 120;
    config.seed = seed;
    config.sim.drainTicks = 60 * kTicksPerSecond;
    config.obsLevel = obs::ObsLevel::Full;
    return config;
}

RunCapture
runCaptured(ExperimentConfig config, std::uint64_t everyCaptures = 0,
            bool stop = false, const std::string *resume = nullptr)
{
    obs::VectorSink sink;
    config.obsSink = &sink;
    RunCapture capture;
    config.sim.checkpointEveryCaptures = everyCaptures;
    config.sim.checkpointStop = stop;
    config.sim.resumeState = resume;
    if (everyCaptures > 0) {
        config.sim.checkpointSink = [&capture](std::string &&state,
                                               Tick now) {
            capture.checkpoints.emplace_back(std::move(state), now);
        };
    }
    capture.metrics = runExperiment(config);
    capture.events = sink.events();
    return capture;
}

/** Serialize an event stream the way the golden-trace tests do. */
std::string
eventBytes(const std::vector<obs::Event> &events)
{
    std::ostringstream out;
    obs::writeJsonlHeader(out);
    obs::writeJsonl(out, events, 0);
    return out.str();
}

/** Serialize every metrics field the event stream cannot see. */
std::string
metricsLine(const Metrics &m)
{
    std::ostringstream out;
    out << m.eventsTotal << ' ' << m.eventsInteresting << ' '
        << m.interestingInputsNominal << ' ' << m.captures << ' '
        << m.interestingCaptured << ' ' << m.uninterestingCaptured
        << ' ' << m.storedInputs << ' ' << m.iboDropsInteresting
        << ' ' << m.iboDropsUninteresting << ' ' << m.fnDiscards
        << ' ' << m.fpPositives << ' ' << m.unprocessedInteresting
        << ' ' << m.txInterestingHq << ' ' << m.txInterestingLq
        << ' ' << m.txUninterestingHq << ' ' << m.txUninterestingLq
        << ' ' << m.jobsCompleted << ' ' << m.degradedJobs << ' '
        << m.iboPredictions << ' ' << m.powerFailures << ' '
        << m.checkpointSaves << ' ' << m.rechargeTicks << ' '
        << m.activeTicks << ' ' << m.rolledBackTicks << ' '
        << m.simulatedTicks << ' ' << m.deadlineMisses << ' '
        << m.energyWastedJoules << ' ' << m.schedulerOverheadSeconds
        << ' ' << m.schedulerOverheadEnergy << ' '
        << m.telemetryOverheadSeconds << ' '
        << m.telemetryOverheadEnergy << ' '
        << m.jobServiceSeconds.count() << ' '
        << m.jobServiceSeconds.sum() << ' '
        << m.predictionErrorSeconds.count() << ' '
        << m.predictionErrorSeconds.sum();
    return out.str();
}

/** The straight run's events from `boundary` on (seg2's share). */
std::vector<obs::Event>
suffixFrom(const std::vector<obs::Event> &events, Tick boundary)
{
    std::vector<obs::Event> suffix;
    for (const obs::Event &event : events) {
        if (event.tick >= boundary)
            suffix.push_back(event);
    }
    return suffix;
}

/** Events strictly before `boundary` (seg1's share). */
std::vector<obs::Event>
prefixBefore(const std::vector<obs::Event> &events, Tick boundary)
{
    std::vector<obs::Event> prefix;
    for (const obs::Event &event : events) {
        if (event.tick < boundary)
            prefix.push_back(event);
    }
    return prefix;
}

TEST(CheckpointResume, CheckpointingIsByteInert)
{
    const RunCapture clean = runCaptured(baseConfig());
    const RunCapture saving = runCaptured(baseConfig(), 40);

    ASSERT_GE(saving.checkpoints.size(), 2u);
    for (const Snapshot &snap : saving.checkpoints)
        EXPECT_FALSE(snap.first.empty());
    EXPECT_EQ(eventBytes(clean.events), eventBytes(saving.events));
    EXPECT_EQ(metricsLine(clean.metrics), metricsLine(saving.metrics));
}

TEST(CheckpointResume, ResumeAtEveryBoundaryReplaysTheStraightRun)
{
    const RunCapture straight = runCaptured(baseConfig());
    const RunCapture saving = runCaptured(baseConfig(), 40);
    ASSERT_GE(saving.checkpoints.size(), 2u);

    // Cap the loop: each resume is a full run, and the boundaries all
    // exercise the same machinery.
    const std::size_t limit = saving.checkpoints.size() < 6
        ? saving.checkpoints.size() : 6;
    for (std::size_t i = 0; i < limit; ++i) {
        const Snapshot &snap = saving.checkpoints[i];
        const RunCapture resumed =
            runCaptured(baseConfig(), 0, false, &snap.first);

        EXPECT_EQ(metricsLine(straight.metrics),
                  metricsLine(resumed.metrics))
            << "metrics diverged resuming from boundary " << snap.second;
        EXPECT_EQ(eventBytes(suffixFrom(straight.events, snap.second)),
                  eventBytes(resumed.events))
            << "event stream diverged resuming from boundary "
            << snap.second;
    }
}

TEST(CheckpointResume, StopSegmentConcatenatesWithResume)
{
    const RunCapture straight = runCaptured(baseConfig());

    // Segment 1: run until the first checkpoint fires, then stop.
    const RunCapture seg1 = runCaptured(baseConfig(), 40, true);
    ASSERT_EQ(seg1.checkpoints.size(), 1u);
    const Tick boundary = seg1.checkpoints.front().second;
    EXPECT_EQ(seg1.metrics.simulatedTicks, boundary);
    EXPECT_EQ(eventBytes(prefixBefore(straight.events, boundary)),
              eventBytes(seg1.events));

    // Segment 2: resume from the blob and run to the end.
    const RunCapture seg2 = runCaptured(
        baseConfig(), 0, false, &seg1.checkpoints.front().first);
    std::vector<obs::Event> stitched = seg1.events;
    stitched.insert(stitched.end(), seg2.events.begin(),
                    seg2.events.end());
    EXPECT_EQ(eventBytes(straight.events), eventBytes(stitched));
    EXPECT_EQ(metricsLine(straight.metrics), metricsLine(seg2.metrics));
}

TEST(CheckpointResume, CrossEngineResumeMatches)
{
    const RunCapture straight = runCaptured(baseConfig());

    for (const EngineKind saveEngine :
         {EngineKind::Tick, EngineKind::Event}) {
        ExperimentConfig saveCfg = baseConfig();
        saveCfg.sim.engine = saveEngine;
        const RunCapture saving = runCaptured(saveCfg, 60);
        ASSERT_GE(saving.checkpoints.size(), 1u);
        const Snapshot &snap = saving.checkpoints.front();

        const EngineKind resumeEngine = saveEngine == EngineKind::Tick
            ? EngineKind::Event : EngineKind::Tick;
        ExperimentConfig resumeCfg = baseConfig();
        resumeCfg.sim.engine = resumeEngine;
        const RunCapture resumed =
            runCaptured(resumeCfg, 0, false, &snap.first);

        EXPECT_EQ(metricsLine(straight.metrics),
                  metricsLine(resumed.metrics))
            << "cross-engine resume (save under "
            << engineKindName(saveEngine) << ") diverged";
        EXPECT_EQ(eventBytes(suffixFrom(straight.events, snap.second)),
                  eventBytes(resumed.events));
    }
}

TEST(CheckpointResume, FaultedRunResumes)
{
    // Exercise every RNG-bearing fault seam across the boundary:
    // measurement noise, capture jitter, execution overruns, power
    // windows and the detection/mitigation episode tracker.
    ExperimentConfig config = baseConfig(7);
    config.faults.seed = 11;
    config.faults.measurement.biasWatts = 0.002;
    config.faults.measurement.noiseSigma = 0.1;
    config.faults.powerTrace.dropoutsPerHour = 40.0;
    config.faults.powerTrace.dropoutSeconds = 2.0;
    config.faults.arrivals.burstsPerHour = 30.0;
    config.faults.arrivals.burstSeconds = 3.0;
    config.faults.arrivals.captureJitterMs = 120;
    config.faults.execution.overrunProbability = 0.2;
    config.faults.execution.overrunFactor = 1.8;

    const RunCapture straight = runCaptured(config);
    const RunCapture saving = runCaptured(config, 50);
    ASSERT_GE(saving.checkpoints.size(), 2u);

    const Snapshot &snap = saving.checkpoints[1];
    const RunCapture resumed = runCaptured(config, 0, false, &snap.first);
    EXPECT_EQ(metricsLine(straight.metrics),
              metricsLine(resumed.metrics));
    EXPECT_EQ(eventBytes(suffixFrom(straight.events, snap.second)),
              eventBytes(resumed.events));
}

TEST(CheckpointResume, JitterAndTelemetryCostsCarryAcrossResume)
{
    // Execution jitter consumes the simulator's own jitter RNG;
    // nonzero telemetry rates exercise the uncharged-tail carry (the
    // resumed recorder counts from zero, so the watermark goes
    // negative).
    ExperimentConfig config = baseConfig(13);
    config.sim.executionJitterSigma = 0.2;
    config.sim.telemetrySecondsPerEvent = 1e-6;
    config.sim.telemetryEnergyPerEvent = 2e-8;

    const RunCapture straight = runCaptured(config);
    EXPECT_GT(straight.metrics.telemetryOverheadSeconds, 0.0);

    const RunCapture saving = runCaptured(config, 40);
    ASSERT_GE(saving.checkpoints.size(), 2u);
    const Snapshot &snap = saving.checkpoints[1];
    const RunCapture resumed = runCaptured(config, 0, false, &snap.first);
    EXPECT_EQ(metricsLine(straight.metrics),
              metricsLine(resumed.metrics));
    EXPECT_EQ(eventBytes(suffixFrom(straight.events, snap.second)),
              eventBytes(resumed.events));
}

// --- Committed resume golden -------------------------------------------
//
// The acceptance artifact: a checked-in straight-run trace that both
// the uninterrupted batch (at --jobs 1 and 4) and the stop+resume
// stitched segments must reproduce byte-for-byte. Regenerate with
//   QUETZAL_REGEN_GOLDEN=1 ./test_sim --gtest_filter='ResumeGolden.*'

constexpr std::size_t kGoldenRuns = 2;
constexpr std::uint64_t kGoldenEvery = 5;

/** Deliberately tiny: the reference lives in git. */
ExperimentConfig
goldenConfig(std::size_t runIndex)
{
    ExperimentConfig config;
    config.environment = trace::EnvironmentPreset::Msp430Short;
    config.eventCount = 3;
    config.seed = runIndex + 1;
    config.sim.bufferCapacity = 6;
    config.sim.drainTicks = 10 * kTicksPerSecond;
    config.obsLevel = obs::ObsLevel::Full;
    return config;
}

std::string
resumeGoldenPath()
{
    return std::string(QUETZAL_SIM_GOLDEN_DIR) + "/resume_straight.jsonl";
}

/** The straight batch on `jobs` workers, serialized like the CLI. */
std::string
straightBatchBytes(unsigned jobs)
{
    std::vector<obs::VectorSink> sinks(kGoldenRuns);
    std::vector<ExperimentConfig> configs;
    configs.reserve(kGoldenRuns);
    for (std::size_t i = 0; i < kGoldenRuns; ++i) {
        ExperimentConfig config = goldenConfig(i);
        config.obsSink = &sinks[i];
        configs.push_back(std::move(config));
    }

    ParallelRunner runner(jobs);
    (void)runner.runBatch(configs);

    std::ostringstream out;
    obs::writeJsonlHeader(out);
    for (std::size_t i = 0; i < sinks.size(); ++i)
        obs::writeJsonl(out, sinks[i].events(), i);
    return out.str();
}

/** Every run split at its first checkpoint, then stitched back. */
std::string
stitchedBatchBytes()
{
    std::ostringstream out;
    obs::writeJsonlHeader(out);
    for (std::size_t i = 0; i < kGoldenRuns; ++i) {
        const RunCapture seg1 =
            runCaptured(goldenConfig(i), kGoldenEvery, true);
        EXPECT_EQ(seg1.checkpoints.size(), 1u)
            << "run " << i << " never reached a checkpoint boundary";
        if (seg1.checkpoints.empty())
            continue;
        const RunCapture seg2 = runCaptured(
            goldenConfig(i), 0, false, &seg1.checkpoints.front().first);
        std::vector<obs::Event> stitched = seg1.events;
        stitched.insert(stitched.end(), seg2.events.begin(),
                        seg2.events.end());
        obs::writeJsonl(out, stitched, i);
    }
    return out.str();
}

TEST(ResumeGolden, StraightBatchMatchesCommittedReference)
{
    const std::string path = resumeGoldenPath();
    const bool regen = std::getenv("QUETZAL_REGEN_GOLDEN") != nullptr;
    if (regen) {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        ASSERT_TRUE(out) << "cannot write " << path;
        out << straightBatchBytes(1);
        ASSERT_TRUE(out.good());
    }

    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in) << path
        << " missing — regenerate with QUETZAL_REGEN_GOLDEN=1";
    std::ostringstream bytes;
    bytes << in.rdbuf();
    const std::string golden = bytes.str();

    for (const unsigned jobs : {1u, 4u}) {
        EXPECT_EQ(golden, straightBatchBytes(jobs))
            << "straight batch diverged from " << path << " at --jobs "
            << jobs
            << " — if intentional, regenerate with QUETZAL_REGEN_GOLDEN=1";
    }
}

TEST(ResumeGolden, StitchedStopResumeMatchesCommittedReference)
{
    const std::string path = resumeGoldenPath();
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in) << path
        << " missing — regenerate with QUETZAL_REGEN_GOLDEN=1";
    std::ostringstream bytes;
    bytes << in.rdbuf();

    EXPECT_EQ(bytes.str(), stitchedBatchBytes())
        << "stop+resume stitched trace diverged from the committed "
           "straight-run reference " << path;
}

// --- QZCK archive framing ----------------------------------------------

TEST(CheckpointArchive, FrameRoundTrips)
{
    const std::string state = "not a real blob, any bytes do";
    const std::string framed = frameCheckpoint(state, 0xabcdefull, 4200);

    CheckpointArchive archive;
    std::string error;
    ASSERT_TRUE(unframeCheckpoint(framed, archive, error)) << error;
    EXPECT_EQ(archive.fingerprint, 0xabcdefull);
    EXPECT_EQ(archive.boundaryTick, 4200);
    EXPECT_EQ(archive.state, state);
}

TEST(CheckpointArchive, RejectsCorruption)
{
    const std::string framed =
        frameCheckpoint("payload bytes", 1, 1000);
    CheckpointArchive archive;
    std::string error;

    // Truncated.
    EXPECT_FALSE(unframeCheckpoint(
        framed.substr(0, framed.size() - 3), archive, error));
    EXPECT_NE(error.find("truncated"), std::string::npos) << error;

    // Flipped state byte -> CRC mismatch.
    std::string corrupt = framed;
    corrupt.back() = static_cast<char>(corrupt.back() ^ 0x40);
    EXPECT_FALSE(unframeCheckpoint(corrupt, archive, error));
    EXPECT_NE(error.find("CRC"), std::string::npos) << error;

    // Bad magic.
    std::string wrongMagic = framed;
    wrongMagic[0] = 'X';
    EXPECT_FALSE(unframeCheckpoint(wrongMagic, archive, error));
    EXPECT_NE(error.find("magic"), std::string::npos) << error;

    // Unsupported major version.
    std::string futureMajor = framed;
    futureMajor[4] = static_cast<char>(kCheckpointMajor + 1);
    EXPECT_FALSE(unframeCheckpoint(futureMajor, archive, error));
    EXPECT_NE(error.find("version"), std::string::npos) << error;

    // Empty input.
    EXPECT_FALSE(unframeCheckpoint(std::string(), archive, error));
}

TEST(CheckpointArchive, FingerprintSeparatesConfigsButNotEngines)
{
    const ExperimentConfig base = baseConfig();
    const std::uint64_t fp = experimentFingerprint(base);

    ExperimentConfig otherSeed = base;
    otherSeed.seed = base.seed + 1;
    EXPECT_NE(fp, experimentFingerprint(otherSeed));

    ExperimentConfig otherController = base;
    otherController.controller = ControllerKind::NoAdapt;
    EXPECT_NE(fp, experimentFingerprint(otherController));

    ExperimentConfig otherBuffer = base;
    otherBuffer.sim.bufferCapacity = base.sim.bufferCapacity + 1;
    EXPECT_NE(fp, experimentFingerprint(otherBuffer));

    // The engine kind must NOT matter: both engines are byte-identical
    // by contract, so a checkpoint resumes under either.
    ExperimentConfig otherEngine = base;
    otherEngine.sim.engine = EngineKind::Event;
    EXPECT_EQ(fp, experimentFingerprint(otherEngine));

    // Output plumbing must not matter either.
    ExperimentConfig otherObs = base;
    otherObs.obsSink = nullptr;
    EXPECT_EQ(fp, experimentFingerprint(otherObs));
}

} // namespace
} // namespace sim
} // namespace quetzal
