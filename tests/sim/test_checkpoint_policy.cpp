/**
 * @file
 * Tests for the intermittent checkpointing policies: JIT (no lost
 * work, needs a voltage warning) vs Periodic (rollback to the last
 * save on power failure).
 */

#include <gtest/gtest.h>

#include "sim/device.hpp"
#include "sim/experiment.hpp"

namespace quetzal {
namespace sim {
namespace {

app::DeviceProfile
periodicProfile(Tick interval)
{
    app::DeviceProfile dev = app::apollo4Device();
    dev.checkpoint.policy = app::CheckpointPolicy::Periodic;
    dev.checkpoint.periodicInterval = interval;
    return dev;
}

TEST(PeriodicCheckpoint, ProactiveSavesWhileRunning)
{
    // Plenty of power: the task completes without failures but pays
    // one save per interval crossing.
    const auto watts = energy::PowerTrace::constant(100e-3);
    Device device(periodicProfile(500), watts);
    device.startTask(10e-3, 2'000);
    device.advance(0, 1'000'000);
    EXPECT_FALSE(device.taskActive());
    EXPECT_EQ(device.stats().powerFailures, 0u);
    // 2000 ticks of work with a 500-tick interval: saves at 500,
    // 1000, 1500 (the task finishes exactly at the 2000 boundary).
    EXPECT_EQ(device.stats().checkpointSaves, 3u);
    EXPECT_EQ(device.stats().rolledBackTicks, 0);
}

TEST(PeriodicCheckpoint, SaveTimeExtendsCompletion)
{
    const auto watts = energy::PowerTrace::constant(100e-3);
    Device jit(app::apollo4Device(), watts);
    jit.startTask(10e-3, 2'000);
    const Tick jitDone = jit.advance(0, 1'000'000);

    Device periodic(periodicProfile(500), watts);
    periodic.startTask(10e-3, 2'000);
    const Tick periodicDone = periodic.advance(0, 1'000'000);

    EXPECT_EQ(jitDone, 2'000);
    EXPECT_EQ(periodicDone,
              2'000 + 3 * app::apollo4Device().checkpoint.saveTicks);
}

TEST(PeriodicCheckpoint, PowerFailureRollsBack)
{
    // Low power forces failures; rolled-back work must be re-run, so
    // the periodic device finishes later and reports rollback ticks.
    // The interval (200 ticks) stays below the per-charge execution
    // budget so forward progress survives every failure.
    const auto watts = energy::PowerTrace::constant(5e-3);
    Device jit(app::apollo4Device(), watts);
    jit.startTask(100e-3, 5'000);
    const Tick jitDone = jit.advance(0, 100'000'000);

    Device periodic(periodicProfile(200), watts);
    periodic.startTask(100e-3, 5'000);
    const Tick periodicDone = periodic.advance(0, 100'000'000);

    EXPECT_FALSE(jit.taskActive());
    EXPECT_FALSE(periodic.taskActive());
    EXPECT_GT(periodic.stats().rolledBackTicks, 0);
    EXPECT_GT(periodicDone, jitDone);
    EXPECT_EQ(jit.stats().rolledBackTicks, 0);
}

TEST(PeriodicCheckpoint, CoarseIntervalCanLivelock)
{
    // The classic intermittent-computing non-termination hazard
    // [8, 90]: when a whole charge cycle funds less work than one
    // checkpoint interval, every failure rolls back everything and
    // the task never completes. JIT checkpointing is immune.
    const auto watts = energy::PowerTrace::constant(5e-3);
    Device periodic(periodicProfile(2'000), watts);
    periodic.startTask(100e-3, 5'000);
    periodic.advance(0, 2'000'000);
    EXPECT_TRUE(periodic.taskActive());
    EXPECT_GT(periodic.stats().rolledBackTicks, 10'000);
}

TEST(PeriodicCheckpoint, ShortIntervalLosesLessWork)
{
    const auto watts = energy::PowerTrace::constant(5e-3);
    Device coarse(periodicProfile(2'000), watts);
    coarse.startTask(100e-3, 5'000);
    coarse.advance(0, 100'000'000);

    Device fine(periodicProfile(200), watts);
    fine.startTask(100e-3, 5'000);
    fine.advance(0, 100'000'000);

    EXPECT_LT(fine.stats().rolledBackTicks,
              coarse.stats().rolledBackTicks);
    EXPECT_GT(fine.stats().checkpointSaves,
              coarse.stats().checkpointSaves);
}

TEST(PeriodicCheckpoint, EndToEndExperimentRuns)
{
    ExperimentConfig cfg;
    cfg.environment = trace::EnvironmentPreset::Crowded;
    cfg.eventCount = 120;
    cfg.controller = ControllerKind::Quetzal;
    cfg.checkpointPolicy = app::CheckpointPolicy::Periodic;
    cfg.checkpointIntervalTicks = 500;
    const Metrics periodic = runExperiment(cfg);
    EXPECT_GT(periodic.jobsCompleted, 0u);
    EXPECT_GT(periodic.checkpointSaves, 0u);
    EXPECT_GT(periodic.rolledBackTicks, 0);

    cfg.checkpointPolicy = app::CheckpointPolicy::JustInTime;
    const Metrics jit = runExperiment(cfg);
    // JIT saves exactly once per failure.
    EXPECT_EQ(jit.checkpointSaves, jit.powerFailures);
    EXPECT_EQ(jit.rolledBackTicks, 0);
}

} // namespace
} // namespace sim
} // namespace quetzal
