/**
 * @file
 * QZCK file I/O and multi-record stream semantics (DESIGN.md
 * sections 16 and 17): the single-archive read/write pair, the
 * append-only stream builder the fleet engine checkpoints through,
 * the truncate-then-append torn-tail repair, and a cross-engine
 * resume routed through an on-disk archive — the file-level paths
 * the in-memory resume suite (test_checkpoint_resume.cpp) never
 * touches.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace_io.hpp"
#include "obs/trace_sink.hpp"
#include "sim/checkpoint.hpp"
#include "sim/experiment.hpp"

namespace quetzal {
namespace sim {
namespace {

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + "quetzal_stream_" + name + ".qzck";
}

std::string
fileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << path;
    std::ostringstream bytes;
    bytes << in.rdbuf();
    return bytes.str();
}

TEST(CheckpointFile, WriteReadRoundTrips)
{
    const std::string path = tempPath("roundtrip");
    writeCheckpointFile(path, "the state blob", 0xf00d, 4200);

    const CheckpointArchive archive = readCheckpointFile(path, 0xf00d);
    EXPECT_EQ(archive.fingerprint, 0xf00dull);
    EXPECT_EQ(archive.boundaryTick, 4200);
    EXPECT_EQ(archive.state, "the state blob");

    // Writing again replaces the archive (single-archive semantics:
    // the file holds the latest checkpoint, not a stream).
    writeCheckpointFile(path, "a later state", 0xf00d, 8400);
    const CheckpointArchive later = readCheckpointFile(path, 0xf00d);
    EXPECT_EQ(later.boundaryTick, 8400);
    EXPECT_EQ(later.state, "a later state");
    std::remove(path.c_str());
}

using CheckpointFileDeathTest = ::testing::Test;

TEST(CheckpointFileDeathTest, ReadDiesOnMissingCorruptOrForeignFile)
{
    EXPECT_EXIT((void)readCheckpointFile(tempPath("missing"), 1),
                ::testing::ExitedWithCode(1),
                "cannot open checkpoint file");

    const std::string path = tempPath("bad");
    writeCheckpointFile(path, "payload", 0xaaaa, 100);
    EXPECT_EXIT((void)readCheckpointFile(path, 0xbbbb),
                ::testing::ExitedWithCode(1),
                "belongs to a different experiment");

    std::string corrupt = fileBytes(path);
    corrupt.back() = static_cast<char>(corrupt.back() ^ 0x01);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << corrupt;
    out.close();
    EXPECT_EXIT((void)readCheckpointFile(path, 0xaaaa),
                ::testing::ExitedWithCode(1), "CRC mismatch");
    std::remove(path.c_str());
}

TEST(CheckpointStreamFile, AppendBuildsAScannableStream)
{
    const std::string path = tempPath("append");
    std::remove(path.c_str());
    appendCheckpointFile(path, "one", 0xcafe, 600);
    appendCheckpointFile(path, "two", 0xcafe, 1200);
    appendCheckpointFile(path, "three", 0xcafe, 1800);

    const CheckpointScan scan = readCheckpointStream(path, 0xcafe);
    EXPECT_EQ(scan.records, 3u);
    EXPECT_FALSE(scan.tornTail);
    EXPECT_EQ(scan.last.boundaryTick, 1800);
    EXPECT_EQ(scan.last.state, "three");
    EXPECT_EQ(scan.validBytes, fileBytes(path).size());

    // The stream is the concatenation of the individual frames.
    EXPECT_EQ(fileBytes(path),
              frameCheckpoint("one", 0xcafe, 600) +
                  frameCheckpoint("two", 0xcafe, 1200) +
                  frameCheckpoint("three", 0xcafe, 1800));
    std::remove(path.c_str());
}

TEST(CheckpointStreamFile, TruncateRepairsATornTailForAppendResume)
{
    const std::string path = tempPath("repair");
    std::remove(path.c_str());
    appendCheckpointFile(path, "one", 0xcafe, 600);
    appendCheckpointFile(path, "two", 0xcafe, 1200);
    const std::string clean = fileBytes(path);

    // Tear a third record in half, as a killed writer would.
    const std::string torn = frameCheckpoint("three", 0xcafe, 1800);
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out.write(torn.data(),
              static_cast<std::streamsize>(torn.size() / 2));
    out.close();

    CheckpointScan scan = readCheckpointStream(path, 0xcafe);
    EXPECT_EQ(scan.records, 2u);
    EXPECT_TRUE(scan.tornTail);
    EXPECT_EQ(scan.last.boundaryTick, 1200);
    EXPECT_EQ(scan.validBytes, clean.size());

    // The resume protocol: truncate to validBytes, then append the
    // re-simulated barrier — the repaired stream is the straight one.
    truncateCheckpointFile(path, scan.validBytes);
    EXPECT_EQ(fileBytes(path), clean);
    appendCheckpointFile(path, "three", 0xcafe, 1800);
    const CheckpointScan repaired = readCheckpointStream(path, 0xcafe);
    EXPECT_EQ(repaired.records, 3u);
    EXPECT_FALSE(repaired.tornTail);
    EXPECT_EQ(repaired.last.state, "three");
    std::remove(path.c_str());
}

TEST(CheckpointStreamFile, ScanToleratesATornTailOnlyAfterARecord)
{
    // File-level parity with the in-memory sweep: a lone torn record
    // is fatal (there is nothing to fall back to), a torn tail after
    // a complete record is not.
    const std::string path = tempPath("tolerance");
    const std::string framed = frameCheckpoint("state", 0xcafe, 600);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(framed.data(),
              static_cast<std::streamsize>(framed.size()));
    out.write(framed.data(), 10); // torn duplicate: header prefix
    out.close();

    const CheckpointScan scan = readCheckpointStream(path, 0xcafe);
    EXPECT_EQ(scan.records, 1u);
    EXPECT_TRUE(scan.tornTail);
    EXPECT_EQ(scan.validBytes, framed.size());
    std::remove(path.c_str());
}

using CheckpointStreamFileDeathTest = ::testing::Test;

TEST(CheckpointStreamFileDeathTest, ReadDiesOnMissingOrEmptyStream)
{
    EXPECT_EXIT((void)readCheckpointStream(tempPath("absent"), 1),
                ::testing::ExitedWithCode(1),
                "cannot open checkpoint file");

    const std::string path = tempPath("empty");
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.close();
    EXPECT_EXIT((void)readCheckpointStream(path, 1),
                ::testing::ExitedWithCode(1), "no complete record");
    std::remove(path.c_str());
}

TEST(CheckpointStreamFileDeathTest, ReadDiesOnAForeignFingerprint)
{
    const std::string path = tempPath("foreign");
    std::remove(path.c_str());
    appendCheckpointFile(path, "state", 0x1234, 600);
    EXPECT_EXIT((void)readCheckpointStream(path, 0x4321),
                ::testing::ExitedWithCode(1),
                "belongs to a different experiment");
    std::remove(path.c_str());
}

// --- Cross-engine resume through an on-disk archive --------------------

ExperimentConfig
resumableConfig(EngineKind engine)
{
    ExperimentConfig config;
    config.eventCount = 120;
    config.seed = 42;
    config.sim.drainTicks = 60 * kTicksPerSecond;
    config.sim.engine = engine;
    config.obsLevel = obs::ObsLevel::Full;
    return config;
}

TEST(CheckpointStreamFile, CrossEngineResumeThroughAnArchiveFile)
{
    // Save under the tick engine through writeCheckpointFile, read
    // the archive back under the event engine's (equal) fingerprint,
    // and finish the run: the full disk round trip of the resume
    // path, across the engine seam the fingerprint deliberately
    // ignores.
    const std::string path = tempPath("cross_engine");
    obs::VectorSink straightSink;
    ExperimentConfig straightCfg = resumableConfig(EngineKind::Tick);
    straightCfg.obsSink = &straightSink;
    const Metrics straight = runExperiment(straightCfg);

    ExperimentConfig saveCfg = resumableConfig(EngineKind::Tick);
    const std::uint64_t saveFp = experimentFingerprint(saveCfg);
    saveCfg.sim.checkpointEveryCaptures = 40;
    saveCfg.sim.checkpointStop = true;
    saveCfg.sim.checkpointSink = [&path, saveFp](std::string &&state,
                                                 Tick now) {
        writeCheckpointFile(path, state, saveFp, now);
    };
    (void)runExperiment(saveCfg);

    ExperimentConfig resumeCfg = resumableConfig(EngineKind::Event);
    ASSERT_EQ(experimentFingerprint(resumeCfg), saveFp)
        << "the engine kind must not enter the fingerprint";
    const CheckpointArchive archive =
        readCheckpointFile(path, experimentFingerprint(resumeCfg));
    obs::VectorSink resumedSink;
    resumeCfg.obsSink = &resumedSink;
    resumeCfg.sim.resumeState = &archive.state;
    const Metrics resumed = runExperiment(resumeCfg);

    EXPECT_EQ(straight.jobsCompleted, resumed.jobsCompleted);
    EXPECT_EQ(straight.powerFailures, resumed.powerFailures);
    EXPECT_EQ(straight.simulatedTicks, resumed.simulatedTicks);
    EXPECT_EQ(straight.storedInputs, resumed.storedInputs);

    // The resumed event stream is the straight run's suffix from the
    // archive's boundary tick on.
    std::vector<obs::Event> suffix;
    for (const obs::Event &event : straightSink.events()) {
        if (event.tick >= archive.boundaryTick)
            suffix.push_back(event);
    }
    std::ostringstream expected;
    std::ostringstream actual;
    obs::writeJsonl(expected, suffix, 0);
    obs::writeJsonl(actual, resumedSink.events(), 0);
    EXPECT_EQ(expected.str(), actual.str());
    std::remove(path.c_str());
}

} // namespace
} // namespace sim
} // namespace quetzal
