/**
 * @file
 * Tests for the parallel experiment engine: the determinism contract
 * (bit-identical results for every thread count), submission-order
 * results, and the shared-trace cache.
 */

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "sim/ensemble.hpp"
#include "sim/runner.hpp"

namespace quetzal {
namespace sim {
namespace {

ExperimentConfig
smallConfig(ControllerKind kind)
{
    ExperimentConfig cfg;
    cfg.environment = trace::EnvironmentPreset::Crowded;
    cfg.eventCount = 60;
    cfg.controller = kind;
    return cfg;
}

/** Field-for-field equality of two accumulated statistics. */
void
expectStatsIdentical(const util::RunningStats &a,
                     const util::RunningStats &b)
{
    EXPECT_EQ(a.count(), b.count());
    // EXPECT_EQ on doubles is exact comparison: bit-identical, not
    // approximately equal.
    EXPECT_EQ(a.mean(), b.mean());
    EXPECT_EQ(a.stddev(), b.stddev());
    EXPECT_EQ(a.min(), b.min());
    EXPECT_EQ(a.max(), b.max());
    EXPECT_EQ(a.sum(), b.sum());
}

TEST(ParallelRunner, EnsembleSerialAndParallelBitIdentical)
{
    const auto cfg = smallConfig(ControllerKind::Quetzal);
    const std::vector<std::uint64_t> seeds{3, 1, 4, 1, 5, 9, 2, 6};

    const EnsembleResult serial = runEnsemble(cfg, seeds, 1);
    const EnsembleResult parallel = runEnsemble(cfg, seeds, 4);

    EXPECT_EQ(serial.runs, parallel.runs);
    expectStatsIdentical(serial.discardedPct, parallel.discardedPct);
    expectStatsIdentical(serial.iboPct, parallel.iboPct);
    expectStatsIdentical(serial.fnPct, parallel.fnPct);
    expectStatsIdentical(serial.highQualityShare,
                         parallel.highQualityShare);
    expectStatsIdentical(serial.reportedInputs,
                         parallel.reportedInputs);
    expectStatsIdentical(serial.jobsCompleted, parallel.jobsCompleted);
}

TEST(ParallelRunner, RunManyMatchesIndividualRunsInOrder)
{
    std::vector<ExperimentConfig> configs{
        smallConfig(ControllerKind::NoAdapt),
        smallConfig(ControllerKind::Quetzal),
        smallConfig(ControllerKind::CatNap),
    };
    configs[1].seed = 11; // mix seeds to exercise the trace cache

    ParallelRunner runner(4);
    const std::vector<Metrics> batch = runner.runBatch(configs);
    ASSERT_EQ(batch.size(), configs.size());

    for (std::size_t i = 0; i < configs.size(); ++i) {
        const Metrics single = runExperiment(configs[i]);
        EXPECT_EQ(batch[i].interestingDiscardedTotal(),
                  single.interestingDiscardedTotal());
        EXPECT_EQ(batch[i].txInterestingHq, single.txInterestingHq);
        EXPECT_EQ(batch[i].txInterestingLq, single.txInterestingLq);
        EXPECT_EQ(batch[i].jobsCompleted, single.jobsCompleted);
        EXPECT_EQ(batch[i].powerFailures, single.powerFailures);
        EXPECT_EQ(batch[i].simulatedTicks, single.simulatedTicks);
    }
}

TEST(ParallelRunner, RunSeedsProducesPerSeedResults)
{
    const auto cfg = smallConfig(ControllerKind::NoAdapt);
    ParallelRunner runner(2);
    const std::vector<std::uint64_t> seeds{7, 8};
    const std::vector<Metrics> results = runner.runSeeds(cfg, seeds);
    ASSERT_EQ(results.size(), 2u);

    ExperimentConfig first = cfg;
    first.seed = 7;
    const Metrics single = runExperiment(first);
    EXPECT_EQ(results[0].interestingDiscardedTotal(),
              single.interestingDiscardedTotal());
    // Different seeds give a different environment.
    EXPECT_NE(results[0].interestingInputsNominal,
              results[1].interestingInputsNominal);
}

TEST(TraceCache, SharesTracesAcrossEqualKeys)
{
    TraceCache cache;
    ExperimentConfig a = smallConfig(ControllerKind::Quetzal);
    ExperimentConfig b = smallConfig(ControllerKind::NoAdapt);

    cache.prepare(a);
    cache.prepare(b);
    ASSERT_TRUE(a.sharedEvents);
    ASSERT_TRUE(a.sharedPowerTrace);
    // Same trace parameters: one cache entry, shared read-only.
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(a.sharedEvents.get(), b.sharedEvents.get());
    EXPECT_EQ(a.sharedPowerTrace.get(), b.sharedPowerTrace.get());

    // A different seed describes different traces.
    ExperimentConfig c = smallConfig(ControllerKind::Quetzal);
    c.seed = 123;
    cache.prepare(c);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_NE(c.sharedEvents.get(), a.sharedEvents.get());
}

TEST(TraceCache, SharedTracesReproduceUnsharedMetrics)
{
    const ExperimentConfig plain = smallConfig(ControllerKind::Quetzal);
    const Metrics unshared = runExperiment(plain);

    TraceCache cache;
    ExperimentConfig shared = plain;
    cache.prepare(shared);
    const Metrics viaCache = runExperiment(shared);

    EXPECT_EQ(unshared.interestingDiscardedTotal(),
              viaCache.interestingDiscardedTotal());
    EXPECT_EQ(unshared.txInterestingHq, viaCache.txInterestingHq);
    EXPECT_EQ(unshared.jobsCompleted, viaCache.jobsCompleted);
    EXPECT_EQ(unshared.simulatedTicks, viaCache.simulatedTicks);
}

TEST(ParallelRunner, DefaultJobsIsPositive)
{
    EXPECT_GE(defaultJobs(), 1u);
    EXPECT_GE(ParallelRunner().jobs(), 1u);
    EXPECT_EQ(ParallelRunner(3).jobs(), 3u);
}

} // namespace
} // namespace sim
} // namespace quetzal
