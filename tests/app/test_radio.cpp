/**
 * @file
 * Tests for the LoRa radio model.
 */

#include <gtest/gtest.h>

#include "app/radio.hpp"

namespace quetzal {
namespace app {
namespace {

TEST(LoRa, SymbolTimeDrivesAirtime)
{
    LoRaParams sf7;
    sf7.spreadingFactor = 7;
    LoRaParams sf9 = sf7;
    sf9.spreadingFactor = 9;
    // Each SF step doubles symbol duration: airtime grows.
    EXPECT_GT(loRaPacketAirtime(sf9, 50), loRaPacketAirtime(sf7, 50));
}

TEST(LoRa, AirtimeMonotoneInPayload)
{
    LoRaParams params;
    double previous = 0.0;
    for (std::size_t bytes : {1u, 10u, 50u, 100u, 200u}) {
        const double t = loRaPacketAirtime(params, bytes);
        EXPECT_GT(t, previous);
        previous = t;
    }
}

TEST(LoRa, Sf7PacketAirtimeSanity)
{
    // A 50-byte SF7/125 kHz packet is ~100 ms (textbook value).
    LoRaParams params;
    const double t = loRaPacketAirtime(params, 50);
    EXPECT_GT(t, 0.05);
    EXPECT_LT(t, 0.2);
}

TEST(LoRa, MessagesFragment)
{
    LoRaParams params;
    // 400 bytes needs two packets; total exceeds 1.9x one max packet.
    const Tick whole = loRaMessageTicks(params, 400);
    const Tick single = loRaMessageTicks(params, 200);
    EXPECT_GT(whole, single);
    EXPECT_LT(whole, 3 * single);
}

TEST(RadioOptions, QualityOrdering)
{
    const RadioOption full = fullImageRadio();
    const RadioOption byte = singleByteRadio();
    EXPECT_GT(full.exeTicks, byte.exeTicks);
    EXPECT_GT(full.payloadBytes, byte.payloadBytes);
    EXPECT_EQ(byte.payloadBytes, 1u);
    // Both transmit at the same radio power.
    EXPECT_DOUBLE_EQ(full.execPower, byte.execPower);
}

TEST(RadioOptions, PaperRegimeLatencies)
{
    // The paper reports the radio task spanning ~0.8 s at high power;
    // our full-image option lands in that regime (airtime bound).
    const RadioOption full = fullImageRadio();
    EXPECT_GT(ticksToSeconds(full.exeTicks), 0.4);
    EXPECT_LT(ticksToSeconds(full.exeTicks), 1.2);
    // The single byte is an order of magnitude cheaper.
    const RadioOption byte = singleByteRadio();
    EXPECT_LT(static_cast<double>(byte.exeTicks),
              0.15 * static_cast<double>(full.exeTicks));
}

TEST(RadioDeathTest, InvalidInputsFatal)
{
    LoRaParams bad;
    bad.spreadingFactor = 13;
    EXPECT_EXIT(loRaPacketAirtime(bad, 10), ::testing::ExitedWithCode(1),
                "spreading");
    LoRaParams ok;
    EXPECT_EXIT(loRaMessageTicks(ok, 0), ::testing::ExitedWithCode(1),
                "empty");
}

} // namespace
} // namespace app
} // namespace quetzal
