/**
 * @file
 * Tests for the application factories (person detection and audio
 * monitor) and the classification-outcome model.
 */

#include <gtest/gtest.h>

#include "app/audio_monitor.hpp"
#include "app/person_detection.hpp"

namespace quetzal {
namespace app {
namespace {

TEST(PersonDetection, RegistersExpectedGraph)
{
    core::TaskSystem system;
    const auto appModel =
        buildPersonDetectionApp(system, apollo4Device());
    EXPECT_EQ(system.taskCount(), 2u);
    EXPECT_EQ(system.jobCount(), 2u);

    const core::Job &classify = system.job(appModel.classifyJob);
    ASSERT_TRUE(classify.onPositive.has_value());
    EXPECT_EQ(*classify.onPositive, appModel.transmitJob);
    EXPECT_EQ(classify.tasks, std::vector<core::TaskId>{
                                  appModel.inferenceTask});

    const core::Job &transmit = system.job(appModel.transmitJob);
    EXPECT_FALSE(transmit.onPositive.has_value());
    EXPECT_EQ(transmit.tasks,
              std::vector<core::TaskId>{appModel.radioTask});
}

TEST(PersonDetection, TasksAreDegradable)
{
    core::TaskSystem system;
    const auto appModel =
        buildPersonDetectionApp(system, apollo4Device());
    EXPECT_TRUE(system.task(appModel.inferenceTask).degradable());
    EXPECT_TRUE(system.task(appModel.radioTask).degradable());
    // Inference options mirror the model zoo ordering.
    EXPECT_EQ(system.task(appModel.inferenceTask).option(0).name,
              "MobileNetV2");
    EXPECT_EQ(system.task(appModel.radioTask).option(1).name,
              "single-byte");
}

TEST(PersonDetection, Msp430UsesQuantizedLeNets)
{
    core::TaskSystem system;
    const auto appModel =
        buildPersonDetectionApp(system, msp430Device());
    EXPECT_EQ(system.task(appModel.inferenceTask).option(0).name,
              "LeNet-int16");
    EXPECT_EQ(system.task(appModel.inferenceTask).option(1).name,
              "LeNet-int8");
}

TEST(PersonDetection, StoredImageIsCompressed)
{
    core::TaskSystem system;
    const auto appModel =
        buildPersonDetectionApp(system, apollo4Device());
    EXPECT_LT(appModel.storedInputBytes, kRawImageBytes / 10);
    EXPECT_GT(appModel.storedInputBytes, 0u);
}

TEST(Application, ClassificationRatesMatchConfiguredModel)
{
    core::TaskSystem system;
    const auto appModel =
        buildPersonDetectionApp(system, apollo4Device());
    util::Rng rng(77);
    const int trials = 200000;

    int falseNegatives = 0;
    int falsePositives = 0;
    for (int i = 0; i < trials; ++i) {
        if (!appModel.classifyPositive(rng, 0, true))
            ++falseNegatives;
        if (appModel.classifyPositive(rng, 0, false))
            ++falsePositives;
    }
    const MlModel &model = appModel.inferenceModels[0];
    EXPECT_NEAR(static_cast<double>(falseNegatives) / trials,
                model.falseNegativeRate, 0.005);
    EXPECT_NEAR(static_cast<double>(falsePositives) / trials,
                model.falsePositiveRate, 0.005);
}

TEST(Application, DegradedOptionMisclassifiesMore)
{
    core::TaskSystem system;
    const auto appModel =
        buildPersonDetectionApp(system, apollo4Device());
    util::Rng rng(78);
    int fnHigh = 0;
    int fnLow = 0;
    for (int i = 0; i < 100000; ++i) {
        fnHigh += !appModel.classifyPositive(rng, 0, true);
        fnLow += !appModel.classifyPositive(rng, 1, true);
    }
    EXPECT_GT(fnLow, 2 * fnHigh);
}

TEST(AudioMonitor, RegistersSecondApplication)
{
    core::TaskSystem system;
    const auto appModel = buildAudioMonitorApp(system, apollo4Device());
    EXPECT_EQ(system.taskCount(), 2u);
    EXPECT_EQ(system.jobCount(), 2u);
    EXPECT_EQ(system.task(appModel.inferenceTask).name(),
              "audio-detect");
    EXPECT_EQ(system.task(appModel.radioTask).name(), "clip-uplink");
    EXPECT_TRUE(system.task(appModel.inferenceTask).degradable());
    const core::Job &detect = system.job(appModel.classifyJob);
    ASSERT_TRUE(detect.onPositive.has_value());
    EXPECT_EQ(*detect.onPositive, appModel.transmitJob);
}

TEST(AudioMonitor, CoexistsWithPersonDetectionOnOneSystem)
{
    // Both applications can share one TaskSystem (multi-app device).
    core::TaskSystem system;
    const auto camera = buildPersonDetectionApp(system, apollo4Device());
    const auto audio = buildAudioMonitorApp(system, apollo4Device());
    EXPECT_EQ(system.taskCount(), 4u);
    EXPECT_EQ(system.jobCount(), 4u);
    EXPECT_NE(camera.classifyJob, audio.classifyJob);
}

} // namespace
} // namespace app
} // namespace quetzal
