/**
 * @file
 * Tests for the ML model zoo.
 */

#include <gtest/gtest.h>

#include "app/ml_model.hpp"

namespace quetzal {
namespace app {
namespace {

TEST(MlZoo, QualityOrderingPerDevice)
{
    for (auto kind : {DeviceKind::Apollo4, DeviceKind::Msp430}) {
        const auto options = inferenceOptions(kind);
        ASSERT_GE(options.size(), 2u) << deviceKindName(kind);
        // Index 0 is highest quality: strictly better accuracy and
        // strictly higher energy than the degraded option.
        EXPECT_LT(options[0].falseNegativeRate,
                  options[1].falseNegativeRate);
        EXPECT_LT(options[0].falsePositiveRate,
                  options[1].falsePositiveRate);
        EXPECT_GT(options[0].energy(), options[1].energy());
        EXPECT_GT(options[0].exeTicks, options[1].exeTicks);
    }
}

TEST(MlZoo, RatesAreProbabilities)
{
    for (auto kind : {DeviceKind::Apollo4, DeviceKind::Msp430}) {
        for (const auto &model : inferenceOptions(kind)) {
            EXPECT_GT(model.falsePositiveRate, 0.0);
            EXPECT_LT(model.falsePositiveRate, 0.5);
            EXPECT_GT(model.falseNegativeRate, 0.0);
            EXPECT_LT(model.falseNegativeRate, 0.5);
        }
    }
}

TEST(MlZoo, EnergyMatchesLatencyTimesPower)
{
    const MlModel model = mobileNetV2Apollo4();
    EXPECT_NEAR(model.energy(),
                model.execPower * ticksToSeconds(model.exeTicks),
                1e-15);
    // 350 ms at 20 mW = 7 mJ (DESIGN.md calibration).
    EXPECT_NEAR(model.energy(), 7e-3, 1e-9);
}

TEST(MlZoo, Msp430SlowerThanApollo)
{
    EXPECT_GT(leNetInt16Msp430().exeTicks,
              mobileNetV2Apollo4().exeTicks);
    EXPECT_LT(leNetInt16Msp430().execPower,
              mobileNetV2Apollo4().execPower);
}

} // namespace
} // namespace app
} // namespace quetzal
