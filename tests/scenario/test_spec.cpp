/**
 * @file
 * ScenarioSpec front-door tests: valid scenarios round-trip into the
 * expected spec, every class of invalid input produces an
 * expected-style error naming the offending JSON field path (never a
 * crash or a silent default), and the fluent builder shares the same
 * validation as the JSON path.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "scenario/compile.hpp"
#include "scenario/spec.hpp"

namespace quetzal {
namespace scenario {
namespace {

ScenarioSpec
parseOk(const std::string &text)
{
    const Expected<ScenarioSpec> result = parseScenarioText(text);
    EXPECT_TRUE(result.ok());
    for (const SpecError &error : result.errors)
        ADD_FAILURE() << error.describe();
    return result.value.value_or(ScenarioSpec{});
}

/** All error paths of an expected-invalid parse. */
std::vector<std::string>
errorPaths(const std::string &text)
{
    const Expected<ScenarioSpec> result = parseScenarioText(text);
    EXPECT_FALSE(result.ok());
    EXPECT_FALSE(result.value.has_value());
    std::vector<std::string> paths;
    paths.reserve(result.errors.size());
    for (const SpecError &error : result.errors)
        paths.push_back(error.path);
    return paths;
}

bool
contains(const std::vector<std::string> &paths, const std::string &p)
{
    return std::find(paths.begin(), paths.end(), p) != paths.end();
}

const char kMinimal[] = R"({
  "name": "minimal",
  "populations": [{"name": "QZ", "controller": "QZ"}]
})";

TEST(ScenarioSpecParse, MinimalScenarioRoundTrips)
{
    const ScenarioSpec spec = parseOk(kMinimal);
    EXPECT_EQ(spec.name, "minimal");
    EXPECT_EQ(spec.schemaVersion, 1);
    ASSERT_EQ(spec.populations.size(), 1u);
    EXPECT_EQ(spec.populations[0].name, "QZ");
    ASSERT_EQ(spec.populations[0].overrides.size(), 1u);
    EXPECT_EQ(spec.populations[0].overrides[0].field, "controller");
    EXPECT_TRUE(spec.axes.empty());
    EXPECT_FALSE(spec.report.enabled);
}

TEST(ScenarioSpecParse, FullScenarioRoundTrips)
{
    const ScenarioSpec spec = parseOk(R"json({
      "schema_version": 1,
      "name": "full",
      "description": "d",
      "defaults": {"events": 500, "seed": 7, "buffer": 12},
      "populations": [
        {"name": "A", "controller": "QZ",
         "pid": {"kp": 1e-5, "ki": 2e-6}},
        {"name": "B", "controller": "NA", "use_pid": false}
      ],
      "sweep": {
        "mode": "zip",
        "axes": [
          {"field": "environment", "values": ["crowded", "msp430"]},
          {"field": "cells", "values": [4, 8]}
        ]
      },
      "max_runs": 100,
      "output": {"summary": true, "rollup": true,
                 "csv": "-",
                 "trace": {"path": "t.jsonl", "level": "counters"}},
      "report": {
        "banner": "b",
        "table": ["A", "B"],
        "lines": [{
          "format": "A vs B: %.1fx (%.0f%%)",
          "values": [
            {"metric": "discard_ratio", "subject": "A",
             "baseline": "B"},
            {"metric": "hq_share_pct", "subject": "A"}
          ]
        }]
      }
    })json");
    EXPECT_EQ(spec.defaults.size(), 3u);
    EXPECT_EQ(spec.mode, SweepMode::Zip);
    ASSERT_EQ(spec.axes.size(), 2u);
    EXPECT_EQ(spec.axes[1].field, "cells");
    EXPECT_EQ(spec.maxRuns, 100u);
    EXPECT_TRUE(spec.output.summary);
    EXPECT_TRUE(spec.output.rollup);
    EXPECT_EQ(spec.output.csvPath, "-");
    ASSERT_TRUE(spec.output.trace.has_value());
    EXPECT_EQ(spec.output.trace->level, obs::ObsLevel::Counters);
    ASSERT_TRUE(spec.report.enabled);
    ASSERT_EQ(spec.report.lines.size(), 1u);
    EXPECT_EQ(spec.report.lines[0].terms.size(), 2u);
}

TEST(ScenarioSpecParse, SeedRangeExpands)
{
    const ScenarioSpec spec = parseOk(R"({
      "name": "seeds",
      "populations": [{"name": "QZ", "controller": "QZ"}],
      "sweep": {"axes": [
        {"field": "seed", "range": {"from": 10, "count": 5}}]}
    })");
    ASSERT_EQ(spec.axes.size(), 1u);
    ASSERT_EQ(spec.axes[0].values.size(), 5u);
    EXPECT_EQ(spec.axes[0].values.front().asUint64(), 10u);
    EXPECT_EQ(spec.axes[0].values.back().asUint64(), 14u);
}

TEST(ScenarioSpecParse, RejectsUnknownTopLevelKey)
{
    const auto paths = errorPaths(R"({
      "name": "x", "frobnicate": 1,
      "populations": [{"name": "QZ"}]
    })");
    EXPECT_TRUE(contains(paths, "frobnicate"));
}

TEST(ScenarioSpecParse, RejectsUnknownFieldWithPath)
{
    const auto paths = errorPaths(R"({
      "name": "x",
      "defaults": {"warp_factor": 9},
      "populations": [{"name": "QZ", "frobnicate": 1}]
    })");
    EXPECT_TRUE(contains(paths, "defaults.warp_factor"));
    EXPECT_TRUE(contains(paths, "populations[0].frobnicate"));
}

TEST(ScenarioSpecParse, BadEnumDiagnosticListsAllowedValues)
{
    const Expected<ScenarioSpec> result = parseScenarioText(R"({
      "name": "x",
      "populations": [{"name": "A", "controller": "WARP"}]
    })");
    ASSERT_FALSE(result.ok());
    ASSERT_EQ(result.errors.size(), 1u);
    EXPECT_EQ(result.errors[0].path, "populations[0].controller");
    // The message names the legal spellings.
    EXPECT_NE(result.errors[0].message.find("QZ-AvgSe2e"),
              std::string::npos);
    EXPECT_NE(result.errors[0].message.find("Ideal"),
              std::string::npos);
}

TEST(ScenarioSpecParse, OutOfRangeValuesNameTheirPath)
{
    const auto paths = errorPaths(R"({
      "name": "x",
      "populations": [
        {"name": "A", "controller": "QZ", "buffer": 0,
         "buffer_threshold": 1.5}],
      "sweep": {"axes": [{"field": "cells", "values": [4, 65]}]}
    })");
    EXPECT_TRUE(contains(paths, "populations[0].buffer"));
    EXPECT_TRUE(contains(paths, "populations[0].buffer_threshold"));
    EXPECT_TRUE(contains(paths, "sweep.axes[0].values[1]"));
}

TEST(ScenarioSpecParse, RejectsDuplicateAndEmptyPopulations)
{
    const auto paths = errorPaths(R"({
      "name": "x",
      "populations": [
        {"name": "A", "controller": "QZ"},
        {"name": "A", "controller": "NA"}]
    })");
    EXPECT_TRUE(contains(paths, "populations[1].name"));

    const auto empty = errorPaths(R"({"name": "x", "populations": []})");
    EXPECT_TRUE(contains(empty, "populations"));
}

TEST(ScenarioSpecParse, RejectsAxisShadowedByPopulationOverride)
{
    const auto paths = errorPaths(R"({
      "name": "x",
      "populations": [
        {"name": "A", "controller": "QZ", "environment": "crowded"}],
      "sweep": {"axes": [
        {"field": "environment", "values": ["crowded", "msp430"]}]}
    })");
    EXPECT_TRUE(contains(paths, "populations[0].environment"));
}

TEST(ScenarioSpecParse, RejectsZipLengthMismatch)
{
    const auto paths = errorPaths(R"({
      "name": "x",
      "populations": [{"name": "A", "controller": "QZ"}],
      "sweep": {"mode": "zip", "axes": [
        {"field": "environment", "values": ["crowded", "msp430"]},
        {"field": "cells", "values": [4]}]}
    })");
    EXPECT_TRUE(contains(paths, "sweep.axes"));
}

TEST(ScenarioSpecParse, EnforcesCrossProductRunLimit)
{
    const auto paths = errorPaths(R"({
      "name": "x",
      "max_runs": 10,
      "populations": [{"name": "A", "controller": "QZ"}],
      "sweep": {"axes": [
        {"field": "seed", "range": {"from": 1, "count": 4}},
        {"field": "cells", "values": [2, 4, 6]}]}
    })");
    EXPECT_TRUE(contains(paths, "sweep"));
}

TEST(ScenarioSpecParse, TraceFormatAcceptsBtraceRejectsUnknown)
{
    const ScenarioSpec spec = parseOk(R"({
      "name": "t",
      "populations": [{"name": "QZ", "controller": "QZ"}],
      "output": {"trace": {"path": "-", "format": "btrace"}}
    })");
    ASSERT_TRUE(spec.output.trace.has_value());
    EXPECT_EQ(spec.output.trace->format, "btrace");

    const std::vector<std::string> paths = errorPaths(R"({
      "name": "t",
      "populations": [{"name": "QZ", "controller": "QZ"}],
      "output": {"trace": {"path": "-", "format": "protobuf"}}
    })");
    EXPECT_TRUE(contains(paths, "output.trace.format"));
}

TEST(ScenarioSpecParse, RejectsUnknownSchemaVersion)
{
    const auto paths = errorPaths(R"({
      "schema_version": 2,
      "name": "x",
      "populations": [{"name": "A", "controller": "QZ"}]
    })");
    EXPECT_TRUE(contains(paths, "schema_version"));
}

TEST(ScenarioSpecParse, RejectsBadReportReferencesAndFormats)
{
    const auto paths = errorPaths(R"({
      "name": "x",
      "populations": [{"name": "A", "controller": "QZ"},
                      {"name": "B", "controller": "NA"}],
      "report": {
        "banner": "b",
        "table": ["A", "C"],
        "lines": [
          {"format": "only %s strings",
           "values": [{"metric": "hq_share_pct", "subject": "A"}]},
          {"format": "%.1f and %.1f",
           "values": [{"metric": "discard_ratio", "subject": "A",
                       "baseline": "B"}]},
          {"format": "%.1f",
           "values": [{"metric": "warp_speed", "subject": "A"}]},
          {"format": "%.1f",
           "values": [{"metric": "discard_ratio", "subject": "A"}]}
        ]
      }
    })");
    EXPECT_TRUE(contains(paths, "report.table[1]"));
    EXPECT_TRUE(contains(paths, "report.lines[0].format"));
    EXPECT_TRUE(contains(paths, "report.lines[1].format"));
    EXPECT_TRUE(
        contains(paths, "report.lines[2].values[0].metric"));
    EXPECT_TRUE(contains(paths, "report.lines[3].values[0]"));
}

TEST(ScenarioSpecParse, JsonSyntaxErrorsAreSpecErrors)
{
    const Expected<ScenarioSpec> result =
        parseScenarioText("{\"name\": oops}");
    ASSERT_FALSE(result.ok());
    ASSERT_EQ(result.errors.size(), 1u);
    EXPECT_NE(result.errors[0].message.find("JSON parse error"),
              std::string::npos);
    EXPECT_NE(result.errors[0].message.find("line 1"),
              std::string::npos);
}

TEST(ScenarioSpecParse, MissingFileIsAnError)
{
    const Expected<ScenarioSpec> result =
        loadScenarioFile("/nonexistent/scenario.json");
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.errors[0].message.find("cannot open"),
              std::string::npos);
}

TEST(ScenarioBuilderApi, BuildsTheSameSpecAsJson)
{
    const Expected<ScenarioSpec> built =
        ScenarioBuilder("minimal")
            .addPopulation("QZ")
            .set("controller", json::makeString("QZ"))
            .build();
    ASSERT_TRUE(built.ok());
    const ScenarioSpec fromJson = parseOk(kMinimal);
    EXPECT_EQ(built.value->name, fromJson.name);
    ASSERT_EQ(built.value->populations.size(), 1u);
    EXPECT_EQ(built.value->populations[0].overrides[0].path,
              fromJson.populations[0].overrides[0].path);
}

TEST(ScenarioBuilderApi, SharesValidationWithJsonFrontEnd)
{
    const Expected<ScenarioSpec> bad =
        ScenarioBuilder("bad")
            .addPopulation("A")
            .set("controller", json::makeString("WARP"))
            .addAxis("environment", {json::makeString("crowded")})
            .addAxis("environment", {json::makeString("msp430")})
            .build();
    ASSERT_FALSE(bad.ok());
    std::vector<std::string> paths;
    for (const SpecError &error : bad.errors)
        paths.push_back(error.path);
    EXPECT_TRUE(contains(paths, "populations[0].controller"));
    EXPECT_TRUE(contains(paths, "sweep.axes[1].field"));
}

TEST(ScenarioBuilderApi, SetBeforePopulationIsAnError)
{
    const Expected<ScenarioSpec> bad =
        ScenarioBuilder("bad")
            .set("controller", json::makeString("QZ"))
            .build();
    ASSERT_FALSE(bad.ok());
}

TEST(ScenarioCompile, AppliesDefaultsAxisThenPopulation)
{
    const ScenarioSpec spec = parseOk(R"({
      "name": "x",
      "defaults": {"events": 500, "buffer": 12},
      "populations": [
        {"name": "A", "controller": "NA"},
        {"name": "B", "controller": "QZ", "buffer": 3}],
      "sweep": {"axes": [
        {"field": "environment",
         "values": ["crowded", "less-crowded"]},
        {"field": "cells", "values": [4, 8]}]}
    })");
    const Expected<ScenarioPlan> compiled = compileScenario(spec);
    ASSERT_TRUE(compiled.ok());
    const ScenarioPlan &plan = *compiled.value;

    // Cross product, first axis outermost, populations inner.
    ASSERT_EQ(plan.cells.size(), 4u);
    ASSERT_EQ(plan.runs.size(), 8u);
    EXPECT_EQ(plan.cells[0].label, "environment: Crowded, cells: 4");
    EXPECT_EQ(plan.cells[1].label, "environment: Crowded, cells: 8");
    EXPECT_EQ(plan.cells[2].label,
              "environment: LessCrowded, cells: 4");

    const sim::ExperimentConfig &a0 = plan.runs[0].config;
    EXPECT_EQ(a0.eventCount, 500u);
    EXPECT_EQ(a0.sim.bufferCapacity, 12u);
    EXPECT_EQ(a0.harvesterCells, 4);
    EXPECT_EQ(a0.controller, sim::ControllerKind::NoAdapt);
    EXPECT_EQ(a0.environment, trace::EnvironmentPreset::Crowded);

    // Population override beats the default.
    const sim::ExperimentConfig &b0 = plan.runs[1].config;
    EXPECT_EQ(b0.sim.bufferCapacity, 3u);
    EXPECT_EQ(b0.controller, sim::ControllerKind::Quetzal);

    // Last cell: both axes advanced.
    const sim::ExperimentConfig &a3 = plan.runs[6].config;
    EXPECT_EQ(a3.environment, trace::EnvironmentPreset::LessCrowded);
    EXPECT_EQ(a3.harvesterCells, 8);
}

TEST(ScenarioCompile, ZipAdvancesAxesTogether)
{
    const ScenarioSpec spec = parseOk(R"({
      "name": "x",
      "populations": [{"name": "A", "controller": "QZ"}],
      "sweep": {"mode": "zip", "axes": [
        {"field": "environment", "values": ["crowded", "msp430"]},
        {"field": "cells", "values": [4, 8]}]}
    })");
    const Expected<ScenarioPlan> compiled = compileScenario(spec);
    ASSERT_TRUE(compiled.ok());
    ASSERT_EQ(compiled.value->runs.size(), 2u);
    EXPECT_EQ(compiled.value->runs[0].config.harvesterCells, 4);
    EXPECT_EQ(compiled.value->runs[1].config.harvesterCells, 8);
    EXPECT_EQ(compiled.value->runs[1].config.environment,
              trace::EnvironmentPreset::Msp430Short);
}

TEST(ScenarioCompile, EventCountOverrideAppliesToEveryRun)
{
    const ScenarioSpec spec = parseOk(kMinimal);
    CompileOptions options;
    options.eventCountOverride = 17;
    const Expected<ScenarioPlan> compiled =
        compileScenario(spec, options);
    ASSERT_TRUE(compiled.ok());
    EXPECT_EQ(compiled.value->runs[0].config.eventCount, 17u);
}

TEST(ScenarioCompile, PidGainsReachTheConfig)
{
    const ScenarioSpec spec = parseOk(R"({
      "name": "x",
      "populations": [{"name": "A", "controller": "QZ",
                       "pid": {"kp": 1e-5, "kd": 2.0}}]
    })");
    const Expected<ScenarioPlan> compiled = compileScenario(spec);
    ASSERT_TRUE(compiled.ok());
    const core::PidConfig &pid = compiled.value->runs[0].config.pid;
    EXPECT_DOUBLE_EQ(pid.kp, 1e-5);
    EXPECT_DOUBLE_EQ(pid.kd, 2.0);
    EXPECT_DOUBLE_EQ(pid.ki, core::PidConfig{}.ki); // untouched
}

TEST(ScenarioCompile, InvalidSpecReportsInsteadOfCrashing)
{
    ScenarioSpec spec; // no populations
    const Expected<ScenarioPlan> compiled = compileScenario(spec);
    EXPECT_FALSE(compiled.ok());
    EXPECT_FALSE(compiled.errors.empty());
}

} // namespace
} // namespace scenario
} // namespace quetzal
