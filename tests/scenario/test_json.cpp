/**
 * @file
 * JSON parser tests: value kinds, exact number text preservation,
 * string escapes, structural errors with line/column, duplicate-key
 * rejection and member ordering.
 */

#include <gtest/gtest.h>

#include "scenario/json.hpp"

namespace quetzal {
namespace scenario {
namespace json {
namespace {

Value
parseOk(const std::string &text)
{
    ParseError error;
    const auto value = parse(text, error);
    EXPECT_TRUE(value.has_value()) << error.describe();
    return value.value_or(Value{});
}

ParseError
parseFail(const std::string &text)
{
    ParseError error;
    const auto value = parse(text, error);
    EXPECT_FALSE(value.has_value()) << "should not parse: " << text;
    return error;
}

TEST(Json, ParsesScalars)
{
    EXPECT_TRUE(parseOk("null").isNull());
    EXPECT_EQ(parseOk("true").asBool(), true);
    EXPECT_EQ(parseOk("false").asBool(), false);
    EXPECT_EQ(parseOk("\"hi\"").asString(), "hi");
    EXPECT_EQ(parseOk("42").asUint64(), 42u);
    EXPECT_EQ(parseOk("-7").asInt64(), -7);
    EXPECT_DOUBLE_EQ(parseOk("2.5e3").asDouble().value(), 2500.0);
}

TEST(Json, NumbersKeepRawText)
{
    // A 64-bit seed must not round-trip through double.
    const Value v = parseOk("18446744073709551615");
    EXPECT_EQ(v.text, "18446744073709551615");
    EXPECT_EQ(v.asUint64(), 18446744073709551615ull);
}

TEST(Json, IntegerAccessorsRejectFractions)
{
    EXPECT_FALSE(parseOk("1.5").asUint64().has_value());
    EXPECT_FALSE(parseOk("1e3").asUint64().has_value());
    EXPECT_FALSE(parseOk("-1").asUint64().has_value());
    EXPECT_TRUE(parseOk("1.5").asDouble().has_value());
}

TEST(Json, ParsesNestedStructures)
{
    const Value v = parseOk(
        "{\"a\": [1, 2, {\"b\": true}], \"c\": \"x\"}");
    ASSERT_TRUE(v.isObject());
    const Value *a = v.find("a");
    ASSERT_NE(a, nullptr);
    ASSERT_TRUE(a->isArray());
    ASSERT_EQ(a->items.size(), 3u);
    EXPECT_EQ(a->items[2].find("b")->asBool(), true);
    EXPECT_EQ(v.find("c")->asString(), "x");
    EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(Json, MembersKeepSourceOrder)
{
    const Value v = parseOk("{\"z\": 1, \"a\": 2, \"m\": 3}");
    ASSERT_EQ(v.members.size(), 3u);
    EXPECT_EQ(v.members[0].first, "z");
    EXPECT_EQ(v.members[1].first, "a");
    EXPECT_EQ(v.members[2].first, "m");
}

TEST(Json, DecodesStringEscapes)
{
    EXPECT_EQ(parseOk("\"a\\n\\t\\\"b\\\\\"").asString(),
              "a\n\t\"b\\");
    EXPECT_EQ(parseOk("\"\\u0041\"").asString(), "A");
    EXPECT_EQ(parseOk("\"\\u00e9\"").asString(), "\xc3\xa9");
    // Surrogate pair -> 4-byte UTF-8.
    EXPECT_EQ(parseOk("\"\\ud83d\\ude00\"").asString(),
              "\xf0\x9f\x98\x80");
}

TEST(Json, RejectsDuplicateKeys)
{
    const ParseError error = parseFail("{\"a\": 1, \"a\": 2}");
    EXPECT_NE(error.message.find("duplicate key"), std::string::npos);
}

TEST(Json, ErrorsCarryLineAndColumn)
{
    const ParseError error = parseFail("{\n  \"a\": 1,\n  oops\n}");
    EXPECT_EQ(error.line, 3);
    EXPECT_GT(error.column, 0);
    EXPECT_NE(error.describe().find("line 3"), std::string::npos);
}

TEST(Json, RejectsMalformedDocuments)
{
    parseFail("");
    parseFail("{");
    parseFail("[1, 2,]");
    parseFail("{\"a\": }");
    parseFail("{\"a\": 1,}");
    parseFail("01");
    parseFail("1.");
    parseFail("\"unterminated");
    parseFail("true false");
    parseFail("nul");
}

TEST(Json, MakersRoundTrip)
{
    EXPECT_EQ(makeString("hi").asString(), "hi");
    EXPECT_EQ(makeNumber(std::uint64_t(7)).asUint64(), 7u);
    EXPECT_EQ(makeNumber(std::uint64_t(18446744073709551615ull)).text,
              "18446744073709551615");
    EXPECT_DOUBLE_EQ(makeNumber(2.5).asDouble().value(), 2.5);
    EXPECT_EQ(makeBool(true).asBool(), true);
}

TEST(Json, RejectsTooDeepNesting)
{
    std::string text(100, '[');
    text += std::string(100, ']');
    const ParseError error = parseFail(text);
    EXPECT_NE(error.message.find("nesting"), std::string::npos);
}

} // namespace
} // namespace json
} // namespace scenario
} // namespace quetzal
