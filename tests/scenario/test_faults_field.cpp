/**
 * @file
 * Scenario-schema tests for the "faults" experiment field: valid
 * fault axes round-trip into fault::FaultSpec, every malformed
 * sub-field is rejected with the offending path named, and axis
 * labels summarize the active sub-blocks.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "scenario/compile.hpp"
#include "scenario/spec.hpp"

namespace quetzal {
namespace scenario {
namespace {

ScenarioSpec
parseOk(const std::string &text)
{
    const Expected<ScenarioSpec> result = parseScenarioText(text);
    EXPECT_TRUE(result.ok());
    for (const SpecError &error : result.errors)
        ADD_FAILURE() << error.describe();
    return result.value.value_or(ScenarioSpec{});
}

bool
rejects(const std::string &text)
{
    const Expected<ScenarioSpec> result = parseScenarioText(text);
    return !result.ok();
}

/** A scenario whose only population override is the given faults. */
std::string
scenarioWithFaults(const std::string &faultsJson)
{
    return std::string(R"({
      "name": "faulted",
      "populations": [{"name": "QZ", "controller": "QZ",
                       "faults": )") +
        faultsJson + "}]\n}";
}

TEST(ScenarioFaults, FullFaultBlockRoundTrips)
{
    const ScenarioSpec spec = parseOk(scenarioWithFaults(R"({
        "seed": 99,
        "detect_error_s": 0.5,
        "mitigate_streak": 4,
        "measurement": {"bias_watts": 0.002, "noise_sigma": 0.1},
        "adc": {"stuck_high_mask": 2, "stuck_low_mask": 1,
                "flip_mask": 128, "saturate_max": 200},
        "power_trace": {"dropouts_per_hour": 6, "dropout_seconds": 20,
                        "spikes_per_hour": 4, "spike_seconds": 10,
                        "spike_factor": 3.0},
        "arrivals": {"bursts_per_hour": 5, "burst_seconds": 15,
                     "capture_jitter_ms": 40},
        "execution": {"overrun_probability": 0.25,
                      "overrun_factor": 2.0}
    })"));
    ASSERT_EQ(spec.populations.size(), 1u);

    sim::ExperimentConfig config;
    for (const Override &override : spec.populations[0].overrides)
        fields::applyField(override.field, override.value, config);

    const fault::FaultSpec &f = config.faults;
    EXPECT_FALSE(f.inert());
    EXPECT_EQ(f.seed, 99u);
    EXPECT_DOUBLE_EQ(f.detectErrorSeconds, 0.5);
    EXPECT_EQ(f.mitigateStreak, 4u);
    EXPECT_DOUBLE_EQ(f.measurement.biasWatts, 0.002);
    EXPECT_DOUBLE_EQ(f.measurement.noiseSigma, 0.1);
    EXPECT_EQ(f.adc.stuckHighMask, 2);
    EXPECT_EQ(f.adc.stuckLowMask, 1);
    EXPECT_EQ(f.adc.flipMask, 128);
    EXPECT_EQ(f.adc.saturateMax, 200);
    EXPECT_DOUBLE_EQ(f.powerTrace.dropoutsPerHour, 6.0);
    EXPECT_DOUBLE_EQ(f.powerTrace.dropoutSeconds, 20.0);
    EXPECT_DOUBLE_EQ(f.powerTrace.spikesPerHour, 4.0);
    EXPECT_DOUBLE_EQ(f.powerTrace.spikeSeconds, 10.0);
    EXPECT_DOUBLE_EQ(f.powerTrace.spikeFactor, 3.0);
    EXPECT_DOUBLE_EQ(f.arrivals.burstsPerHour, 5.0);
    EXPECT_DOUBLE_EQ(f.arrivals.burstSeconds, 15.0);
    EXPECT_EQ(f.arrivals.captureJitterMs, 40);
    EXPECT_DOUBLE_EQ(f.execution.overrunProbability, 0.25);
    EXPECT_DOUBLE_EQ(f.execution.overrunFactor, 2.0);
}

TEST(ScenarioFaults, EmptyFaultObjectStaysInert)
{
    const ScenarioSpec spec = parseOk(scenarioWithFaults("{}"));
    sim::ExperimentConfig config;
    for (const Override &override : spec.populations[0].overrides)
        fields::applyField(override.field, override.value, config);
    EXPECT_TRUE(config.faults.inert());
}

TEST(ScenarioFaults, PartialBlocksLeaveOtherDefaults)
{
    const ScenarioSpec spec = parseOk(scenarioWithFaults(
        R"({"measurement": {"bias_watts": 0.001}})"));
    sim::ExperimentConfig config;
    for (const Override &override : spec.populations[0].overrides)
        fields::applyField(override.field, override.value, config);
    EXPECT_DOUBLE_EQ(config.faults.measurement.biasWatts, 0.001);
    EXPECT_DOUBLE_EQ(config.faults.measurement.noiseSigma, 0.0);
    EXPECT_FALSE(config.faults.adc.active());
}

TEST(ScenarioFaults, RejectsNonObjectValue)
{
    EXPECT_TRUE(rejects(scenarioWithFaults("3")));
    EXPECT_TRUE(rejects(scenarioWithFaults("\"adc\"")));
    EXPECT_TRUE(rejects(scenarioWithFaults("[1, 2]")));
}

TEST(ScenarioFaults, RejectsUnknownKeys)
{
    EXPECT_TRUE(rejects(scenarioWithFaults(R"({"cosmic_rays": {}})")));
    EXPECT_TRUE(rejects(scenarioWithFaults(
        R"({"adc": {"stuck_sideways_mask": 1}})")));
    EXPECT_TRUE(rejects(scenarioWithFaults(
        R"({"measurement": {"bias": 0.1}})")));
}

TEST(ScenarioFaults, RejectsOutOfRangeValues)
{
    // ADC masks are 8-bit.
    EXPECT_TRUE(rejects(scenarioWithFaults(
        R"({"adc": {"flip_mask": 256}})")));
    EXPECT_TRUE(rejects(scenarioWithFaults(
        R"({"adc": {"saturate_max": -1}})")));
    // Probabilities live in [0, 1].
    EXPECT_TRUE(rejects(scenarioWithFaults(
        R"({"execution": {"overrun_probability": 1.5}})")));
    // A streak of zero could never mitigate.
    EXPECT_TRUE(rejects(scenarioWithFaults(
        R"({"mitigate_streak": 0})")));
    // Detection threshold must be positive.
    EXPECT_TRUE(rejects(scenarioWithFaults(
        R"({"detect_error_s": 0})")));
    // Non-integer where an integer is required.
    EXPECT_TRUE(rejects(scenarioWithFaults(
        R"({"adc": {"flip_mask": 1.5}})")));
}

TEST(ScenarioFaults, RejectsWrongTypesInsideBlocks)
{
    EXPECT_TRUE(rejects(scenarioWithFaults(
        R"({"measurement": {"bias_watts": "lots"}})")));
    EXPECT_TRUE(rejects(scenarioWithFaults(
        R"({"measurement": 3})")));
    EXPECT_TRUE(rejects(scenarioWithFaults(
        R"({"seed": "abc"})")));
}

TEST(ScenarioFaults, KnownFieldAndLabel)
{
    EXPECT_TRUE(fields::knownField("faults"));
    const auto fieldList = fields::describeFields();
    EXPECT_NE(fieldList.find("faults"), std::string::npos);
}

TEST(ScenarioFaults, LabelNamesActiveSubBlocks)
{
    const ScenarioSpec spec = parseOk(scenarioWithFaults(
        R"({"adc": {"flip_mask": 1},
            "arrivals": {"capture_jitter_ms": 10}})"));
    const Override *faults = nullptr;
    for (const Override &override : spec.populations[0].overrides)
        if (override.field == "faults")
            faults = &override;
    ASSERT_NE(faults, nullptr);
    EXPECT_EQ(fields::fieldLabel("faults", faults->value),
              "faults:adc+arrivals");
}

TEST(ScenarioFaults, LabelForEmptyBlockIsNoFaults)
{
    const ScenarioSpec spec = parseOk(scenarioWithFaults("{}"));
    const Override &override = spec.populations[0].overrides.back();
    ASSERT_EQ(override.field, "faults");
    EXPECT_EQ(fields::fieldLabel("faults", override.value),
              "no-faults");
}

} // namespace
} // namespace scenario
} // namespace quetzal
