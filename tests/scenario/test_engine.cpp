/**
 * @file
 * Scenario engine tests: a compiled plan produces exactly the
 * metrics a direct runExperiment() loop produces, output is
 * bit-identical across jobs counts (the determinism contract), the
 * report renderer prints banner/sections/format lines, CSV lands on
 * disk, and runScenarioFile() turns invalid input into a non-zero
 * exit instead of a crash.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/trace_cursor.hpp"
#include "scenario/engine.hpp"
#include "scenario/spec.hpp"
#include "sim/experiment.hpp"

namespace quetzal {
namespace scenario {
namespace {

/** Small, fast scenario: 2 populations x 2 environments, 40 events. */
const char kSmall[] = R"({
  "name": "small",
  "defaults": {"events": 40, "seed": 11, "buffer": 6},
  "populations": [
    {"name": "NA", "controller": "NA"},
    {"name": "QZ", "controller": "QZ"}
  ],
  "sweep": {"axes": [
    {"field": "environment", "values": ["msp430", "crowded"]}]}
})";

ScenarioPlan
compileSmall(const std::string &text = kSmall)
{
    const Expected<ScenarioSpec> spec = parseScenarioText(text);
    EXPECT_TRUE(spec.ok());
    const Expected<ScenarioPlan> plan = compileScenario(*spec.value);
    EXPECT_TRUE(plan.ok());
    return *plan.value;
}

void
expectSameMetrics(const sim::Metrics &a, const sim::Metrics &b)
{
    EXPECT_EQ(a.interestingDiscardedTotal(),
              b.interestingDiscardedTotal());
    EXPECT_EQ(a.txInterestingTotal(), b.txInterestingTotal());
    EXPECT_EQ(a.jobsCompleted, b.jobsCompleted);
    EXPECT_EQ(a.degradedJobs, b.degradedJobs);
    EXPECT_EQ(a.powerFailures, b.powerFailures);
    EXPECT_EQ(a.simulatedTicks, b.simulatedTicks);
}

TEST(ScenarioEngine, PlanMatchesDirectExperimentRuns)
{
    const ScenarioPlan plan = compileSmall();
    ASSERT_EQ(plan.runs.size(), 4u);

    testing::internal::CaptureStdout();
    EngineOptions options;
    options.jobs = 1;
    const std::vector<sim::Metrics> results = runPlan(plan, options);
    testing::internal::GetCapturedStdout();

    ASSERT_EQ(results.size(), 4u);
    for (std::size_t i = 0; i < plan.runs.size(); ++i) {
        SCOPED_TRACE(i);
        const sim::Metrics direct =
            sim::runExperiment(plan.runs[i].config);
        expectSameMetrics(results[i], direct);
    }
}

TEST(ScenarioEngine, OutputIsIdenticalAcrossJobCounts)
{
    const ScenarioPlan plan = compileSmall();

    testing::internal::CaptureStdout();
    EngineOptions serial;
    serial.jobs = 1;
    const std::vector<sim::Metrics> one = runPlan(plan, serial);
    const std::string serialOut =
        testing::internal::GetCapturedStdout();

    testing::internal::CaptureStdout();
    EngineOptions parallel;
    parallel.jobs = 4;
    const std::vector<sim::Metrics> four = runPlan(plan, parallel);
    const std::string parallelOut =
        testing::internal::GetCapturedStdout();

    EXPECT_EQ(serialOut, parallelOut);
    ASSERT_FALSE(serialOut.empty());
    ASSERT_EQ(one.size(), four.size());
    for (std::size_t i = 0; i < one.size(); ++i) {
        SCOPED_TRACE(i);
        expectSameMetrics(one[i], four[i]);
    }
}

TEST(ScenarioEngine, ReportRendersBannerSectionsAndLines)
{
    std::string text(kSmall);
    text.insert(text.rfind('}'), R"(,
      "report": {
        "banner": "Test banner",
        "table": ["NA", "QZ"],
        "lines": [{
          "format": "QZ vs NA: %.1fx, hq %.0f%% done",
          "values": [
            {"metric": "discard_ratio", "subject": "QZ",
             "baseline": "NA"},
            {"metric": "hq_share_pct", "subject": "QZ"}]}]
      })");
    const ScenarioPlan plan = compileSmall(text);

    testing::internal::CaptureStdout();
    runPlan(plan, {});
    const std::string out = testing::internal::GetCapturedStdout();

    EXPECT_NE(out.find("\n=== Test banner ===\n"), std::string::npos);
    EXPECT_NE(out.find("\n-- environment: Msp430Short --\n"),
              std::string::npos);
    EXPECT_NE(out.find("\n-- environment: Crowded --\n"),
              std::string::npos);
    // One comparison line per cell, % escapes unescaped.
    EXPECT_NE(out.find("QZ vs NA: "), std::string::npos);
    EXPECT_NE(out.find("% done"), std::string::npos);
    EXPECT_EQ(out.find("%%"), std::string::npos);
    // Table rows label populations.
    EXPECT_NE(out.find("NA "), std::string::npos);
    EXPECT_NE(out.find("QZ "), std::string::npos);
}

TEST(ScenarioEngine, CsvOutputLandsOnDisk)
{
    const std::string path =
        testing::TempDir() + "scenario_engine_test.csv";
    std::string text(kSmall);
    text.insert(text.rfind('}'),
                ",\n  \"output\": {\"csv\": \"" + path + "\"}");
    const ScenarioPlan plan = compileSmall(text);

    testing::internal::CaptureStdout();
    runPlan(plan, {});
    testing::internal::GetCapturedStdout();

    std::ifstream in(path);
    ASSERT_TRUE(in.is_open());
    std::string line;
    std::size_t lines = 0;
    std::getline(in, line);
    EXPECT_EQ(line.rfind("scenario,cell,population,", 0), 0u);
    while (std::getline(in, line))
        ++lines;
    EXPECT_EQ(lines, plan.runs.size());
    std::remove(path.c_str());
}

TEST(ScenarioEngine, BtraceOutputLandsOnDiskAndDecodes)
{
    const std::string path =
        testing::TempDir() + "scenario_engine_test.btrace";
    std::string text(kSmall);
    text.insert(text.rfind('}'),
                ",\n  \"output\": {\"trace\": {\"path\": \"" + path +
                    "\", \"format\": \"btrace\"}}");
    const ScenarioPlan plan = compileSmall(text);

    testing::internal::CaptureStdout();
    runPlan(plan, {});
    testing::internal::GetCapturedStdout();

    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.is_open());
    const auto cursor = obs::openTraceCursor(in, path);
    EXPECT_EQ(cursor->format(), obs::TraceFormat::Btrace);
    obs::TraceRecord record;
    std::size_t records = 0;
    std::uint64_t lastRun = 0;
    while (cursor->next(record)) {
        lastRun = record.run;
        ++records;
    }
    EXPECT_GT(records, 0u);
    EXPECT_EQ(lastRun, plan.runs.size() - 1);
    std::remove(path.c_str());
}

TEST(ScenarioEngine, EventCountOverrideShrinksRuns)
{
    const ScenarioPlan plan = compileSmall();
    testing::internal::CaptureStdout();
    EngineOptions options;
    options.eventCountOverride = 5;
    const std::vector<sim::Metrics> results = runPlan(plan, options);
    testing::internal::GetCapturedStdout();
    for (const sim::Metrics &m : results)
        EXPECT_EQ(m.eventsTotal, 5u);
}

TEST(ScenarioEngine, RunScenarioFileRejectsInvalidInput)
{
    const std::string path =
        testing::TempDir() + "scenario_engine_bad.json";
    {
        std::ofstream out(path);
        out << R"({"name": "bad", "populations": [
            {"name": "A", "controller": "WARP"}]})";
    }
    testing::internal::CaptureStderr();
    const int exitCode = runScenarioFile(path, {});
    const std::string err = testing::internal::GetCapturedStderr();
    EXPECT_EQ(exitCode, 1);
    EXPECT_NE(err.find("populations[0].controller"),
              std::string::npos);
    std::remove(path.c_str());
}

TEST(ScenarioEngine, RunScenarioFileValidateOnlyDoesNotRun)
{
    const std::string path =
        testing::TempDir() + "scenario_engine_ok.json";
    {
        std::ofstream out(path);
        out << kSmall;
    }
    testing::internal::CaptureStdout();
    EngineOptions options;
    options.validateOnly = true;
    const int exitCode = runScenarioFile(path, options);
    const std::string out = testing::internal::GetCapturedStdout();
    EXPECT_EQ(exitCode, 0);
    EXPECT_NE(out.find("OK"), std::string::npos);
    EXPECT_NE(out.find("2 cells x 2 populations = 4 runs"),
              std::string::npos);
    std::remove(path.c_str());
}

} // namespace
} // namespace scenario
} // namespace quetzal
