/**
 * @file
 * Tests for the 8-bit ADC model.
 */

#include <gtest/gtest.h>

#include "hw/adc.hpp"

namespace quetzal {
namespace hw {
namespace {

TEST(Adc8, FullScaleAndZero)
{
    Adc8 adc;
    EXPECT_EQ(adc.sample(0.0), 0);
    EXPECT_EQ(adc.sample(0.6), 255);
    EXPECT_EQ(adc.sample(10.0), 255); // saturates
    EXPECT_EQ(adc.sample(-1.0), 0);   // saturates
}

TEST(Adc8, LsbSize)
{
    Adc8 adc;
    EXPECT_NEAR(adc.lsbVolts(), 0.6 / 255.0, 1e-12);
}

TEST(Adc8, MidScaleRounds)
{
    Adc8 adc;
    const Volts half = 0.3;
    const auto code = adc.sample(half);
    EXPECT_NEAR(code, 127.5, 0.51);
}

TEST(Adc8, QuantizationErrorBounded)
{
    Adc8 adc;
    for (int i = 0; i <= 600; ++i) {
        const Volts v = i * 1e-3;
        const Volts reconstructed = adc.voltageForCode(adc.sample(v));
        EXPECT_NEAR(reconstructed, v, adc.lsbVolts() / 2.0 + 1e-12);
    }
}

TEST(Adc8, MonotoneInVoltage)
{
    Adc8 adc;
    std::uint8_t previous = 0;
    for (int i = 0; i <= 600; ++i) {
        const auto code = adc.sample(i * 1e-3);
        EXPECT_GE(code, previous);
        previous = code;
    }
}

TEST(Adc8, NoiseDrawShiftsCode)
{
    AdcConfig cfg;
    cfg.noiseLsb = 2.0;
    Adc8 adc(cfg);
    const Volts v = 0.3;
    const auto clean = adc.sampleNoisy(v, 0.0);
    const auto up = adc.sampleNoisy(v, 1.0);
    const auto down = adc.sampleNoisy(v, -1.0);
    EXPECT_EQ(clean, adc.sample(v));
    EXPECT_EQ(up, clean + 2);
    EXPECT_EQ(down, clean - 2);
}

TEST(Adc8DeathTest, InvalidConfigIsFatal)
{
    AdcConfig bad;
    bad.vRef = 0.0;
    EXPECT_EXIT(Adc8{bad}, ::testing::ExitedWithCode(1), "reference");
}

} // namespace
} // namespace hw
} // namespace quetzal
