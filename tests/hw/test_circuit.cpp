/**
 * @file
 * Tests for the power-monitor circuit: mux behaviour and the core
 * property that code differences encode power ratios.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "hw/power_monitor_circuit.hpp"

namespace quetzal {
namespace hw {
namespace {

TEST(Circuit, MuxSelectsChannels)
{
    PowerMonitorCircuit circuit;
    circuit.setInputPower(5e-3);
    circuit.setExecutionPower(50e-3);
    circuit.setCapVoltage(3.0);

    circuit.select(Channel::Vin);
    const auto vin = circuit.read();
    circuit.select(Channel::Vexe);
    const auto vexe = circuit.read();
    circuit.select(Channel::Vcap);
    const auto vcap = circuit.read();

    EXPECT_EQ(vin, circuit.measureInputCode());
    EXPECT_EQ(vexe, circuit.measureExecutionCode());
    EXPECT_EQ(vcap, circuit.measureCapCode());
    // Higher power -> higher diode voltage -> higher code.
    EXPECT_GT(vexe, vin);
}

TEST(Circuit, CodeMonotoneInPower)
{
    PowerMonitorCircuit circuit;
    std::uint8_t previous = 0;
    for (double mw = 0.1; mw < 200.0; mw *= 1.3) {
        const auto code = circuit.codeForPower(mw * 1e-3);
        EXPECT_GE(code, previous);
        previous = code;
    }
}

TEST(Circuit, ZeroPowerGivesZeroCode)
{
    PowerMonitorCircuit circuit;
    EXPECT_EQ(circuit.codeForPower(0.0), 0);
    EXPECT_EQ(circuit.codeForPower(-1.0), 0);
}

TEST(Circuit, EqualPowersGiveEqualCodes)
{
    PowerMonitorCircuit circuit;
    for (double mw : {1.0, 5.0, 20.0, 80.0}) {
        circuit.setInputPower(mw * 1e-3);
        circuit.setExecutionPower(mw * 1e-3);
        EXPECT_EQ(circuit.measureInputCode(),
                  circuit.measureExecutionCode());
    }
}

TEST(Circuit, CodeDifferenceEncodesRatio)
{
    // The paper's central identity: with V_ADCMax = 0.6 V, one code
    // step is ~1/8 of a binary order of magnitude of current ratio,
    // so delta ~= 8 * log2(P_exe / P_in).
    PowerMonitorCircuit circuit;
    circuit.setTemperature(37.5 + kCelsiusOffset); // band center
    for (double ratio : {2.0, 4.0, 8.0, 16.0}) {
        const double pin = 2e-3;
        const auto codeIn = circuit.codeForPower(pin);
        const auto codeExe = circuit.codeForPower(pin * ratio);
        const int delta = codeExe - codeIn;
        const double expected = 8.0 * std::log2(ratio);
        EXPECT_NEAR(delta, expected, 1.6)
            << "ratio " << ratio;
    }
}

TEST(Circuit, CapChannelUsesDivider)
{
    CircuitConfig cfg;
    cfg.capDividerRatio = 0.15;
    PowerMonitorCircuit circuit(cfg);
    circuit.setCapVoltage(3.3);
    // 3.3 V * 0.15 = 0.495 V of 0.6 V full scale.
    const auto code = circuit.measureCapCode();
    EXPECT_NEAR(code, 0.495 / 0.6 * 255.0, 1.0);
}

TEST(Circuit, TemperatureShiftsCodes)
{
    PowerMonitorCircuit circuit;
    circuit.setTemperature(25.0 + kCelsiusOffset);
    const auto cold = circuit.codeForPower(10e-3);
    circuit.setTemperature(50.0 + kCelsiusOffset);
    const auto hot = circuit.codeForPower(10e-3);
    EXPECT_NE(cold, hot);
}

TEST(CircuitDeathTest, InvalidRailIsFatal)
{
    CircuitConfig bad;
    bad.railVoltage = 0.0;
    EXPECT_EXIT(PowerMonitorCircuit{bad}, ::testing::ExitedWithCode(1),
                "rail");
}

} // namespace
} // namespace hw
} // namespace quetzal
