/**
 * @file
 * ADC hardware-fault mask tests (src/fault integration): stuck bits,
 * inverted bits and saturation applied to every quantized code, plus
 * the inertness guarantee — identity masks must leave every code of
 * the full 8-bit domain untouched.
 */

#include <gtest/gtest.h>

#include "hw/adc.hpp"

namespace quetzal {
namespace hw {
namespace {

TEST(AdcFaults, DefaultConfigIsFaultFree)
{
    const AdcConfig cfg;
    EXPECT_TRUE(cfg.faultFree());
}

TEST(AdcFaults, IdentityMasksAreExhaustivelyInert)
{
    const Adc8 adc; // default config: identity masks
    for (int code = 0; code <= 255; ++code) {
        ASSERT_EQ(adc.applyFaults(static_cast<std::uint8_t>(code)),
                  static_cast<std::uint8_t>(code))
            << "code=" << code;
    }
}

TEST(AdcFaults, StuckHighForcesBitsOn)
{
    AdcConfig cfg;
    cfg.stuckHighMask = 0x81; // MSB and LSB welded to 1
    const Adc8 adc(cfg);
    EXPECT_EQ(adc.applyFaults(0x00), 0x81);
    EXPECT_EQ(adc.applyFaults(0x7e), 0xff);
    EXPECT_EQ(adc.applyFaults(0x81), 0x81);
}

TEST(AdcFaults, StuckLowForcesBitsOff)
{
    AdcConfig cfg;
    cfg.stuckLowMask = 0x0f;
    const Adc8 adc(cfg);
    EXPECT_EQ(adc.applyFaults(0xff), 0xf0);
    EXPECT_EQ(adc.applyFaults(0x0f), 0x00);
    EXPECT_EQ(adc.applyFaults(0xf0), 0xf0);
}

TEST(AdcFaults, FlipInvertsBits)
{
    AdcConfig cfg;
    cfg.flipMask = 0xff;
    const Adc8 adc(cfg);
    for (int code = 0; code <= 255; ++code) {
        ASSERT_EQ(adc.applyFaults(static_cast<std::uint8_t>(code)),
                  static_cast<std::uint8_t>(255 - code))
            << "code=" << code;
    }
}

TEST(AdcFaults, SaturateMaxClampsCeiling)
{
    AdcConfig cfg;
    cfg.saturateMax = 100;
    const Adc8 adc(cfg);
    EXPECT_EQ(adc.applyFaults(255), 100);
    EXPECT_EQ(adc.applyFaults(101), 100);
    EXPECT_EQ(adc.applyFaults(100), 100);
    EXPECT_EQ(adc.applyFaults(99), 99);
    EXPECT_EQ(adc.applyFaults(0), 0);
}

TEST(AdcFaults, ApplicationOrderIsStuckThenFlipThenSaturate)
{
    AdcConfig cfg;
    cfg.stuckHighMask = 0x01;
    cfg.stuckLowMask = 0x80;
    cfg.flipMask = 0x02;
    cfg.saturateMax = 4;
    const Adc8 adc(cfg);
    // 0x80: stuck -> 0x01, flip -> 0x03, saturate(4) -> 0x03.
    EXPECT_EQ(adc.applyFaults(0x80), 0x03);
    // 0x04: stuck -> 0x05, flip -> 0x07, saturate -> 4.
    EXPECT_EQ(adc.applyFaults(0x04), 4);
}

TEST(AdcFaults, SampleRunsCodesThroughMasks)
{
    AdcConfig cfg;
    cfg.saturateMax = 10;
    const Adc8 faulted(cfg);
    const Adc8 clean;
    // Full-scale voltage quantizes to 255 clean, clamps to 10 faulted.
    EXPECT_EQ(clean.sample(0.6), 255);
    EXPECT_EQ(faulted.sample(0.6), 10);
    // Below the ceiling both agree.
    EXPECT_EQ(faulted.sample(0.01), clean.sample(0.01));
}

TEST(AdcFaults, ActiveMaskMakesConfigNotFaultFree)
{
    AdcConfig cfg;
    cfg.flipMask = 0x10;
    EXPECT_FALSE(cfg.faultFree());
    cfg.flipMask = 0;
    cfg.saturateMax = 254;
    EXPECT_FALSE(cfg.faultFree());
}

} // namespace
} // namespace hw
} // namespace quetzal
