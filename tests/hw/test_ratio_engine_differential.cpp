/**
 * @file
 * Exhaustive differential test of the division-free S_e2e engine
 * (paper Alg. 3) against the exact floating-point reference
 * t_exe * P_exe / P_in — over the *full* 8-bit ADC code domain, not
 * sampled points. Any (execCode, inputCode) pair whose shift/lookup
 * arithmetic drifts outside the rounding envelope of the premult
 * table fails here with the exact code pair named.
 */

#include <cmath>
#include <cstdint>
#include <limits>

#include <gtest/gtest.h>

#include "hw/power_monitor_circuit.hpp"
#include "hw/ratio_engine.hpp"

namespace quetzal {
namespace hw {
namespace {

/** 2^62 ticks: the engine's "never" saturation threshold. */
constexpr double kSaturation =
    static_cast<double>(std::uint64_t{1} << 62);

/**
 * Rounding envelope of the code-domain arithmetic: premult[b] is
 * t_exe * 2^(b/8) rounded to an integer (error <= 0.5 ticks), and
 * the subsequent shift is exact. Relative error is therefore at
 * most ~0.51 / t_exe.
 */
double
codeDomainEnvelope(Tick exeTicks)
{
    return 0.51 / static_cast<double>(exeTicks);
}

TEST(RatioEngineDifferential, ExhaustiveCodeDomainWithinEnvelope)
{
    for (const Tick exeTicks : {Tick{1000}, Tick{131072}, Tick{9999999}}) {
        const double envelope = codeDomainEnvelope(exeTicks);
        for (int exec = 0; exec <= 255; ++exec) {
            const auto profile = RatioEngine::makeProfile(
                exeTicks, static_cast<std::uint8_t>(exec));
            for (int input = 0; input <= 255; ++input) {
                const Tick ticks = RatioEngine::serviceTicks(
                    profile, static_cast<std::uint8_t>(input));
                if (input >= exec) {
                    // Compute bound: exactly t_exe, always.
                    ASSERT_EQ(ticks, exeTicks)
                        << "exec=" << exec << " input=" << input;
                    continue;
                }
                const int delta = exec - input;
                const double exact = static_cast<double>(exeTicks) *
                    std::pow(2.0, static_cast<double>(delta) / 8.0);
                if (exact >= kSaturation * 0.5) {
                    // Near or past saturation: the engine may clamp;
                    // a finite answer must still be in envelope.
                    if (ticks == kTickNever)
                        continue;
                }
                ASSERT_NE(ticks, kTickNever)
                    << "exec=" << exec << " input=" << input;
                const double rel = std::abs(
                    static_cast<double>(ticks) - exact) / exact;
                ASSERT_LE(rel, envelope)
                    << "exec=" << exec << " input=" << input
                    << " ticks=" << ticks << " exact=" << exact;
            }
        }
    }
}

TEST(RatioEngineDifferential, ServiceMonotoneInInputCode)
{
    // Less input power (lower code) can never *shorten* the job.
    const auto profile = RatioEngine::makeProfile(5000, 200);
    Tick previous = RatioEngine::serviceTicks(profile, 255);
    for (int input = 254; input >= 0; --input) {
        const Tick ticks = RatioEngine::serviceTicks(
            profile, static_cast<std::uint8_t>(input));
        if (previous == kTickNever) {
            ASSERT_EQ(ticks, kTickNever) << "input=" << input;
        } else {
            ASSERT_GE(ticks == kTickNever
                          ? std::numeric_limits<Tick>::max()
                          : ticks,
                      previous)
                << "input=" << input;
        }
        previous = ticks;
    }
}

TEST(RatioEngineDifferential, SaturationExactlyMirrorsShiftOverflow)
{
    // The clamp must match the documented rule: premult[b] << (d>>3)
    // saturates iff the shift reaches 62 bits or the product 2^62.
    const auto profile = RatioEngine::makeProfile(1000000, 255);
    for (int input = 0; input <= 255; ++input) {
        const int delta = 255 - input;
        const unsigned shift = static_cast<unsigned>(delta) >> 3;
        const std::uint64_t base =
            profile.premultTicks[static_cast<std::size_t>(delta) & 0x07];
        const bool expectNever = input < 255 &&
            (shift >= 62 || (base << shift) >= (std::uint64_t{1} << 62));
        const Tick ticks = RatioEngine::serviceTicks(
            profile, static_cast<std::uint8_t>(input));
        ASSERT_EQ(ticks == kTickNever, expectNever) << "input=" << input;
    }
}

TEST(RatioEngineDifferential, PremultTableIsRoundedExact)
{
    for (const Tick exeTicks : {Tick{1}, Tick{777}, Tick{123456789}}) {
        const auto profile = RatioEngine::makeProfile(exeTicks, 0);
        for (std::size_t k = 0; k < profile.premultTicks.size(); ++k) {
            const auto expected =
                static_cast<std::uint32_t>(std::lround(
                    static_cast<double>(exeTicks) *
                    std::pow(2.0, static_cast<double>(k) / 8.0)));
            ASSERT_EQ(profile.premultTicks[k], expected)
                << "exe=" << exeTicks << " k=" << k;
        }
    }
}

/**
 * Full-pipeline differential: powers -> circuit codes -> engine,
 * against Eq. (1) in exact floats. The quantization of *two* codes
 * adds at most one LSB of exponent error each, i.e. a factor of
 * 2^(2/8) ~= 19 % worst case; the paper's operating band (ratios
 * <= 4, moderate temperatures) stays well inside it.
 */
TEST(RatioEngineDifferential, PipelineVsExactFloatEnvelope)
{
    PowerMonitorCircuit circuit;
    const Tick exeTicks = 100000;
    const double exeSeconds = ticksToSeconds(exeTicks);

    for (const Watts pExe : {20e-3, 50e-3, 80e-3}) {
        const auto profile = RatioEngine::makeProfile(
            exeTicks, circuit.codeForPower(pExe));
        for (double ratio = 1.0; ratio <= 16.0; ratio *= 1.07) {
            const Watts pIn = pExe / ratio;
            const Tick predicted = RatioEngine::serviceTicks(
                profile, circuit.codeForPower(pIn));
            const double exact = RatioEngine::exactServiceSeconds(
                exeSeconds, pExe, pIn);
            ASSERT_NE(predicted, kTickNever)
                << "pExe=" << pExe << " ratio=" << ratio;
            const double rel = std::abs(
                ticksToSeconds(predicted) - exact) / exact;
            ASSERT_LE(rel, 0.20)
                << "pExe=" << pExe << " ratio=" << ratio
                << " predicted=" << ticksToSeconds(predicted)
                << " exact=" << exact;
        }
    }
}

TEST(RatioEngineDifferential, PipelineModerateBandTighterEnvelope)
{
    // The paper's quoted regime: ratios up to 4x at room temperature
    // hold a much tighter bound than the worst-case LSB analysis.
    PowerMonitorCircuit circuit;
    const Tick exeTicks = 100000;
    const auto profile = RatioEngine::makeProfile(
        exeTicks, circuit.codeForPower(60e-3));
    double worst = 0.0;
    for (double ratio = 1.05; ratio <= 4.0; ratio *= 1.05) {
        const Watts pIn = 60e-3 / ratio;
        const Tick predicted = RatioEngine::serviceTicks(
            profile, circuit.codeForPower(pIn));
        const double exact = RatioEngine::exactServiceSeconds(
            ticksToSeconds(exeTicks), 60e-3, pIn);
        worst = std::max(
            worst,
            std::abs(ticksToSeconds(predicted) - exact) / exact);
    }
    EXPECT_LE(worst, 0.085) << "worst relative error " << worst;
}

} // namespace
} // namespace hw
} // namespace quetzal
