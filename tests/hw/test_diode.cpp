/**
 * @file
 * Tests for the Diode-Law model that underpins the measurement
 * circuit (paper section 5.1).
 */

#include <cmath>

#include <gtest/gtest.h>

#include "hw/diode.hpp"

namespace quetzal {
namespace hw {
namespace {

TEST(Diode, ThermalVoltageAtRoomTemperature)
{
    Diode diode({}, 25.0 + kCelsiusOffset);
    // kT/q at 298.15 K is about 25.7 mV.
    EXPECT_NEAR(diode.thermalVoltage(), 25.7e-3, 0.3e-3);
}

TEST(Diode, VoltageLogarithmicInCurrent)
{
    Diode diode;
    const Volts v1 = diode.voltageForCurrent(1e-3);
    const Volts v2 = diode.voltageForCurrent(2e-3);
    const Volts v4 = diode.voltageForCurrent(4e-3);
    // Equal current ratios produce equal voltage differences.
    EXPECT_NEAR(v2 - v1, v4 - v2, 1e-9);
    // One decade of current is ~59 mV at room temperature (n = 1).
    const Volts decade = diode.voltageForCurrent(1e-2) - v1;
    EXPECT_NEAR(decade, diode.thermalVoltage() * std::log(10.0), 1e-9);
}

TEST(Diode, InverseConsistency)
{
    Diode diode;
    for (double current : {1e-6, 1e-4, 1e-3, 5e-2}) {
        const Volts v = diode.voltageForCurrent(current);
        EXPECT_NEAR(diode.currentForVoltage(v), current,
                    current * 1e-9);
    }
}

TEST(Diode, NonPositiveCurrentGivesZeroVolts)
{
    Diode diode;
    EXPECT_EQ(diode.voltageForCurrent(0.0), 0.0);
    EXPECT_EQ(diode.voltageForCurrent(-1.0), 0.0);
}

TEST(Diode, TemperatureRaisesVoltageSlope)
{
    Diode cold({}, 25.0 + kCelsiusOffset);
    Diode hot({}, 50.0 + kCelsiusOffset);
    // Same current ratio spans a larger voltage range when hot.
    const Volts coldSpan = cold.voltageForCurrent(1e-2) -
        cold.voltageForCurrent(1e-4);
    const Volts hotSpan = hot.voltageForCurrent(1e-2) -
        hot.voltageForCurrent(1e-4);
    EXPECT_GT(hotSpan, coldSpan);
    EXPECT_NEAR(hotSpan / coldSpan,
                (50.0 + kCelsiusOffset) / (25.0 + kCelsiusOffset),
                1e-9);
}

TEST(Diode, IdealityFactorScalesVoltage)
{
    Diode ideal({1e-9, 1.0});
    Diode lossy({1e-9, 2.0});
    EXPECT_NEAR(lossy.voltageForCurrent(1e-3),
                2.0 * ideal.voltageForCurrent(1e-3), 1e-12);
}

TEST(DiodeDeathTest, NonPhysicalTemperaturePanics)
{
    Diode diode;
    EXPECT_DEATH(diode.setTemperature(-5.0), "temperature");
}

} // namespace
} // namespace hw
} // namespace quetzal
