/**
 * @file
 * Tests for the division-free S_e2e engine (paper Algorithm 3),
 * including the end-to-end accuracy claim: the circuit + engine
 * predict the P_exe/P_in ratio within a few percent across the
 * 25-50 C band for moderate ratios (the paper reports <= 5.5 %).
 */

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "hw/power_monitor_circuit.hpp"
#include "hw/ratio_engine.hpp"

namespace quetzal {
namespace hw {
namespace {

TEST(RatioEngine, ProfilePremultiplies)
{
    const auto profile = RatioEngine::makeProfile(1000, 100);
    EXPECT_EQ(profile.exeTicks, 1000u);
    EXPECT_EQ(profile.execCode, 100);
    EXPECT_EQ(profile.premultTicks[0], 1000u);
    for (std::size_t k = 1; k < 8; ++k) {
        const double expected =
            1000.0 * std::pow(2.0, static_cast<double>(k) / 8.0);
        EXPECT_NEAR(profile.premultTicks[k], expected, 0.51) << k;
    }
}

TEST(RatioEngine, ComputeBoundReturnsLatency)
{
    const auto profile = RatioEngine::makeProfile(700, 120);
    // Input power at or above execution power: compute bound.
    EXPECT_EQ(RatioEngine::serviceTicks(profile, 120), 700);
    EXPECT_EQ(RatioEngine::serviceTicks(profile, 200), 700);
}

TEST(RatioEngine, EnergyBoundScalesByPowerRatio)
{
    const auto profile = RatioEngine::makeProfile(1000, 160);
    // delta = 8 -> ratio 2 -> 2000 ticks.
    EXPECT_EQ(RatioEngine::serviceTicks(profile, 152), 2000);
    // delta = 16 -> ratio 4.
    EXPECT_EQ(RatioEngine::serviceTicks(profile, 144), 4000);
    // delta = 4 -> ratio 2^0.5 ~= 1.414.
    EXPECT_NEAR(RatioEngine::serviceTicks(profile, 156), 1414.0, 1.0);
}

TEST(RatioEngine, MatchesImpliedRatioForAllDeltas)
{
    const Tick base = 100000;
    const auto profile =
        RatioEngine::makeProfile(base, 255);
    for (int input = 255; input >= 60; --input) {
        const auto delta = static_cast<std::uint8_t>(255 - input);
        const Tick ticks = RatioEngine::serviceTicks(
            profile, static_cast<std::uint8_t>(input));
        const double expected =
            static_cast<double>(base) * RatioEngine::impliedRatio(delta);
        // Shift/lookup arithmetic matches 2^(delta/8) to rounding.
        EXPECT_NEAR(static_cast<double>(ticks) / expected, 1.0, 1e-4)
            << "delta " << static_cast<int>(delta);
    }
}

TEST(RatioEngine, SaturatesOnHugeDelta)
{
    const auto profile = RatioEngine::makeProfile(0x7fffffff, 255);
    EXPECT_EQ(RatioEngine::serviceTicks(profile, 0), kTickNever);
}

TEST(RatioEngine, ExactServiceSecondsReference)
{
    EXPECT_DOUBLE_EQ(RatioEngine::exactServiceSeconds(2.0, 10e-3, 20e-3),
                     2.0); // compute bound
    EXPECT_DOUBLE_EQ(RatioEngine::exactServiceSeconds(2.0, 40e-3, 10e-3),
                     8.0); // energy bound
    EXPECT_TRUE(std::isinf(
        RatioEngine::exactServiceSeconds(2.0, 40e-3, 0.0)));
}

/**
 * End-to-end accuracy sweep: profile a task through the circuit at a
 * given junction temperature, then compare the engine's S_e2e against
 * Eq. (1) evaluated exactly. Parameterized over the paper's 25-50 C
 * band.
 */
class CircuitAccuracy : public ::testing::TestWithParam<double>
{
};

TEST_P(CircuitAccuracy, ModerateRatiosWithinPaperBound)
{
    PowerMonitorCircuit circuit;
    circuit.setTemperature(GetParam() + kCelsiusOffset);

    const Tick exeTicks = 100000;
    const Watts pExe = 80e-3;
    const auto profile = RatioEngine::makeProfile(
        exeTicks, circuit.codeForPower(pExe));

    double worst = 0.0;
    // Power ratios up to ~4x: the regime the paper quotes <= 5.5 %
    // error for (larger ratios grow the temperature-coefficient
    // error; see bench/tab_overheads and EXPERIMENTS.md).
    for (double ratio = 1.1; ratio <= 4.0; ratio *= 1.15) {
        const Watts pin = pExe / ratio;
        const Tick predicted = RatioEngine::serviceTicks(
            profile, circuit.codeForPower(pin));
        const double exact = RatioEngine::exactServiceSeconds(
            ticksToSeconds(exeTicks), pExe, pin);
        const double error = std::abs(
            ticksToSeconds(predicted) - exact) / exact;
        worst = std::max(worst, error);
    }
    EXPECT_LE(worst, 0.085) << "worst relative error " << worst;
}

TEST_P(CircuitAccuracy, ComputeBoundNeverMisclassifiedBadly)
{
    PowerMonitorCircuit circuit;
    circuit.setTemperature(GetParam() + kCelsiusOffset);
    const auto profile = RatioEngine::makeProfile(
        1000, circuit.codeForPower(10e-3));
    // Input power well above execution power: must return t_exe (one
    // LSB of slack allowed at the boundary).
    const Tick ticks = RatioEngine::serviceTicks(
        profile, circuit.codeForPower(20e-3));
    EXPECT_EQ(ticks, 1000);
}

INSTANTIATE_TEST_SUITE_P(TemperatureBand, CircuitAccuracy,
                         ::testing::Values(25.0, 30.0, 37.5, 45.0, 50.0));

} // namespace
} // namespace hw
} // namespace quetzal
