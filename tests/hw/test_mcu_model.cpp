/**
 * @file
 * Tests for the MCU cost model against the paper's section-5.1
 * numbers.
 */

#include <gtest/gtest.h>

#include "hw/mcu_model.hpp"

namespace quetzal {
namespace hw {
namespace {

TEST(McuModel, PaperOpCostsVerbatim)
{
    const McuModel msp(msp430fr5994Profile());
    EXPECT_EQ(msp.ratioCost(RatioStrategy::SoftwareDivision).cycles,
              158u);
    EXPECT_NEAR(
        msp.ratioCost(RatioStrategy::SoftwareDivision).nanojoules,
        49.37, 1e-9);
    EXPECT_EQ(msp.ratioCost(RatioStrategy::QuetzalModule).cycles, 12u);
    EXPECT_NEAR(msp.ratioCost(RatioStrategy::QuetzalModule).nanojoules,
                3.75, 1e-9);

    const McuModel apollo(apollo4Profile());
    EXPECT_EQ(apollo.ratioCost(RatioStrategy::HardwareDivider).cycles,
              13u);
    EXPECT_NEAR(
        apollo.ratioCost(RatioStrategy::HardwareDivider).nanojoules,
        0.4, 1e-9);
    EXPECT_EQ(apollo.ratioCost(RatioStrategy::QuetzalModule).cycles, 5u);
    EXPECT_NEAR(
        apollo.ratioCost(RatioStrategy::QuetzalModule).nanojoules,
        0.16, 1e-9);
}

TEST(McuModel, EnergyReductionsMatchPaper)
{
    // MSP430: module vs software division -> 92.5 % less energy.
    const McuModel msp(msp430fr5994Profile());
    const double mspReduction = 1.0 - 3.75 / 49.37;
    EXPECT_NEAR(mspReduction, 0.925, 0.002);
    EXPECT_NEAR(
        1.0 - msp.ratioEnergyPerInvocation(RatioStrategy::QuetzalModule,
                                           32, 4) /
                  msp.ratioEnergyPerInvocation(
                      RatioStrategy::SoftwareDivision, 32, 4),
        0.925, 0.002);

    // Apollo 4: module vs hardware divider -> 60 % less energy.
    const McuModel apollo(apollo4Profile());
    EXPECT_NEAR(
        1.0 - apollo.ratioEnergyPerInvocation(
                  RatioStrategy::QuetzalModule, 32, 4) /
                  apollo.ratioEnergyPerInvocation(
                      RatioStrategy::HardwareDivider, 32, 4),
        0.60, 0.03);
}

TEST(McuModel, RatiosPerInvocation)
{
    // Paper: num_tasks + num_degradation_options ratio evaluations.
    EXPECT_EQ(McuModel::ratiosPerInvocation(32, 4), 36u);
    EXPECT_EQ(McuModel::ratiosPerInvocation(2, 2), 4u);
}

TEST(McuModel, Msp430OverheadEndpoints)
{
    // Paper: 10 invocations/s, 32 tasks x 4 options: 6.2 % -> 0.4 %.
    const McuModel msp(msp430fr5994Profile());
    const double withDiv = msp.overheadFraction(
        RatioStrategy::SoftwareDivision, 32, 4, 10.0);
    const double withModule = msp.overheadFraction(
        RatioStrategy::QuetzalModule, 32, 4, 10.0);
    EXPECT_NEAR(withDiv, 0.062, 0.01);
    EXPECT_NEAR(withModule, 0.004, 0.001);
    EXPECT_GT(withDiv / withModule, 10.0); // "over 10x faster"
}

TEST(McuModel, Apollo4OverheadEndpoint)
{
    // Paper: 0.02 % on the Apollo 4.
    const McuModel apollo(apollo4Profile());
    const double withModule = apollo.overheadFraction(
        RatioStrategy::QuetzalModule, 32, 4, 10.0);
    EXPECT_NEAR(withModule, 0.0002, 0.00005);
}

TEST(McuModel, OverheadScalesLinearly)
{
    const McuModel msp(msp430fr5994Profile());
    const double base = msp.overheadFraction(
        RatioStrategy::QuetzalModule, 32, 4, 10.0);
    EXPECT_NEAR(msp.overheadFraction(RatioStrategy::QuetzalModule, 32, 4,
                                     20.0),
                2.0 * base, 1e-12);
}

TEST(McuModel, FootprintNearPaperBudget)
{
    // Paper: 2,360 B for 32 tasks with 4 options each.
    const auto bytes = McuModel::footprintBytes(32, 4, 64, 256);
    EXPECT_GT(bytes, 2000u);
    EXPECT_LT(bytes, 3000u);
    // Monotone in every dimension.
    EXPECT_LT(McuModel::footprintBytes(16, 4, 64, 256), bytes);
    EXPECT_LT(McuModel::footprintBytes(32, 2, 64, 256), bytes);
    EXPECT_LT(McuModel::footprintBytes(32, 4, 32, 256), bytes);
    EXPECT_LT(McuModel::footprintBytes(32, 4, 64, 128), bytes);
}

TEST(McuModelDeathTest, HardwareDividerAbsentIsFatal)
{
    const McuModel msp(msp430fr5994Profile());
    EXPECT_EXIT(msp.ratioCost(RatioStrategy::HardwareDivider),
                ::testing::ExitedWithCode(1), "divider");
}

} // namespace
} // namespace hw
} // namespace quetzal
