/**
 * @file
 * Differential tests for PowerTrace::Cursor: the amortized-O(1)
 * cursor must answer every query sequence — forward, repeated,
 * backward, at and around segment boundaries — identically to a
 * naive linear-scan oracle and to the trace's own O(log n) queries.
 */

#include <gtest/gtest.h>

#include <vector>

#include "energy/power_trace.hpp"
#include "util/random.hpp"

namespace quetzal {
namespace energy {
namespace {

/** Independent linear-scan oracle (deliberately obvious). */
double
naiveValueAt(const PowerTrace &trace, Tick tick)
{
    const auto &segments = trace.data();
    if (segments.empty())
        return 0.0;
    double value = segments.front().value;
    for (const auto &segment : segments) {
        if (segment.start > tick)
            break;
        value = segment.value;
    }
    return value;
}

/** First strict value change after `tick`, scanning linearly. */
Tick
naiveNextChangeAfter(const PowerTrace &trace, Tick tick)
{
    const double current = naiveValueAt(trace, tick);
    for (const auto &segment : trace.data()) {
        if (segment.start > tick && segment.value != current)
            return segment.start;
    }
    return kTickNever;
}

/** Random trace; consecutive equal values included on purpose. */
PowerTrace
randomTrace(util::Rng &rng)
{
    const auto count = static_cast<std::size_t>(rng.uniformInt(1, 40));
    std::vector<PowerTrace::Segment> segments;
    Tick start = rng.uniformInt(0, 50);
    double value = rng.uniform(0.0, 1.0);
    for (std::size_t i = 0; i < count; ++i) {
        // ~25 %: repeat the value, so nextChangeAfter must skip the
        // boundary (a segment start is not necessarily a change).
        if (!rng.bernoulli(0.25) || segments.empty())
            value = rng.uniform(0.0, 1.0);
        segments.push_back({start, value});
        start += rng.uniformInt(1, 500);
    }
    return PowerTrace(std::move(segments));
}

/** Ticks worth probing: boundaries, their neighbors, and extremes. */
std::vector<Tick>
interestingTicks(const PowerTrace &trace)
{
    std::vector<Tick> ticks = {0, 1};
    for (const auto &segment : trace.data()) {
        if (segment.start > 0)
            ticks.push_back(segment.start - 1);
        ticks.push_back(segment.start);
        ticks.push_back(segment.start + 1);
    }
    ticks.push_back(trace.data().back().start + 1'000'000);
    return ticks;
}

TEST(PowerTraceCursor, MatchesOracleOnMonotoneQueries)
{
    util::Rng rng(4242);
    for (int trial = 0; trial < 50; ++trial) {
        SCOPED_TRACE(trial);
        const PowerTrace trace = randomTrace(rng);
        PowerTrace::Cursor cursor = trace.cursor();

        Tick tick = 0;
        const Tick end = trace.data().back().start + 1000;
        while (tick < end) {
            EXPECT_EQ(cursor.valueAt(tick), naiveValueAt(trace, tick));
            EXPECT_EQ(cursor.valueAt(tick), trace.valueAt(tick));
            EXPECT_EQ(cursor.nextChangeAfter(tick),
                      naiveNextChangeAfter(trace, tick));
            EXPECT_EQ(cursor.nextChangeAfter(tick),
                      trace.nextChangeAfter(tick));
            tick += rng.uniformInt(1, 200);
        }
    }
}

TEST(PowerTraceCursor, MatchesOracleOnRandomJumpQueries)
{
    // Arbitrary (non-monotone) query order: every backward jump must
    // re-seek and still agree everywhere.
    util::Rng rng(77);
    for (int trial = 0; trial < 50; ++trial) {
        SCOPED_TRACE(trial);
        const PowerTrace trace = randomTrace(rng);
        PowerTrace::Cursor cursor = trace.cursor();
        const Tick span = trace.data().back().start + 2000;

        for (int query = 0; query < 200; ++query) {
            const Tick tick = rng.uniformInt(0, span);
            EXPECT_EQ(cursor.valueAt(tick), naiveValueAt(trace, tick));
            EXPECT_EQ(cursor.nextChangeAfter(tick),
                      naiveNextChangeAfter(trace, tick));
        }
    }
}

TEST(PowerTraceCursor, MatchesOracleAtSegmentBoundaries)
{
    util::Rng rng(9);
    for (int trial = 0; trial < 50; ++trial) {
        SCOPED_TRACE(trial);
        const PowerTrace trace = randomTrace(rng);
        PowerTrace::Cursor cursor = trace.cursor();
        for (const Tick tick : interestingTicks(trace)) {
            SCOPED_TRACE(tick);
            EXPECT_EQ(cursor.valueAt(tick), naiveValueAt(trace, tick));
            EXPECT_EQ(cursor.nextChangeAfter(tick),
                      naiveNextChangeAfter(trace, tick));
        }
        // The same boundary set again after reset(), in reverse.
        cursor.reset();
        const std::vector<Tick> ticks = interestingTicks(trace);
        for (auto it = ticks.rbegin(); it != ticks.rend(); ++it) {
            SCOPED_TRACE(*it);
            EXPECT_EQ(cursor.valueAt(*it), naiveValueAt(trace, *it));
            EXPECT_EQ(cursor.nextChangeAfter(*it),
                      naiveNextChangeAfter(trace, *it));
        }
    }
}

TEST(PowerTraceCursor, EmptyAndNullTracesAnswerLikeTheTrace)
{
    const PowerTrace empty;
    PowerTrace::Cursor cursor = empty.cursor();
    EXPECT_EQ(cursor.valueAt(0), 0.0);
    EXPECT_EQ(cursor.valueAt(12345), 0.0);
    EXPECT_EQ(cursor.nextChangeAfter(0), kTickNever);

    PowerTrace::Cursor detached; // no trace at all
    EXPECT_EQ(detached.valueAt(7), 0.0);
    EXPECT_EQ(detached.nextChangeAfter(7), kTickNever);
}

TEST(PowerTraceCursor, InterleavedCursorsDoNotInterfere)
{
    util::Rng rng(13);
    const PowerTrace trace = randomTrace(rng);
    PowerTrace::Cursor ahead = trace.cursor();
    PowerTrace::Cursor behind = trace.cursor();
    const Tick span = trace.data().back().start + 1000;

    for (int query = 0; query < 100; ++query) {
        const Tick far = rng.uniformInt(span / 2, span);
        const Tick near = rng.uniformInt(0, span / 2);
        EXPECT_EQ(ahead.valueAt(far), naiveValueAt(trace, far));
        EXPECT_EQ(behind.valueAt(near), naiveValueAt(trace, near));
    }
}

} // namespace
} // namespace energy
} // namespace quetzal
