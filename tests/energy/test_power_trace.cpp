/**
 * @file
 * Tests for energy::PowerTrace.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "energy/power_trace.hpp"

namespace quetzal {
namespace energy {
namespace {

TEST(PowerTrace, EmptyTraceIsZero)
{
    PowerTrace trace;
    EXPECT_EQ(trace.valueAt(0), 0.0);
    EXPECT_EQ(trace.valueAt(12345), 0.0);
    EXPECT_EQ(trace.nextChangeAfter(0), kTickNever);
    EXPECT_EQ(trace.maxValue(), 0.0);
}

TEST(PowerTrace, ConstantTrace)
{
    const PowerTrace trace = PowerTrace::constant(5e-3);
    EXPECT_DOUBLE_EQ(trace.valueAt(0), 5e-3);
    EXPECT_DOUBLE_EQ(trace.valueAt(1'000'000), 5e-3);
    EXPECT_EQ(trace.nextChangeAfter(0), kTickNever);
}

TEST(PowerTrace, PointQueries)
{
    PowerTrace trace({{0, 1.0}, {100, 2.0}, {250, 0.5}});
    EXPECT_DOUBLE_EQ(trace.valueAt(0), 1.0);
    EXPECT_DOUBLE_EQ(trace.valueAt(99), 1.0);
    EXPECT_DOUBLE_EQ(trace.valueAt(100), 2.0);
    EXPECT_DOUBLE_EQ(trace.valueAt(249), 2.0);
    EXPECT_DOUBLE_EQ(trace.valueAt(250), 0.5);
    EXPECT_DOUBLE_EQ(trace.valueAt(9999), 0.5);
}

TEST(PowerTrace, ValueBeforeFirstSegmentExtendsBackward)
{
    PowerTrace trace({{50, 3.0}});
    EXPECT_DOUBLE_EQ(trace.valueAt(0), 3.0);
    EXPECT_DOUBLE_EQ(trace.valueAt(49), 3.0);
}

TEST(PowerTrace, NextChangeAfter)
{
    PowerTrace trace({{0, 1.0}, {100, 2.0}, {250, 0.5}});
    EXPECT_EQ(trace.nextChangeAfter(0), 100);
    EXPECT_EQ(trace.nextChangeAfter(99), 100);
    EXPECT_EQ(trace.nextChangeAfter(100), 250);
    EXPECT_EQ(trace.nextChangeAfter(250), kTickNever);
}

TEST(PowerTrace, NextChangeSkipsEqualValues)
{
    PowerTrace trace;
    trace.append(0, 1.0);
    trace.append(10, 1.0); // no actual change
    trace.append(20, 2.0);
    EXPECT_EQ(trace.nextChangeAfter(0), 20);
}

TEST(PowerTrace, FromSamplesMergesRuns)
{
    const PowerTrace trace =
        PowerTrace::fromSamples({1.0, 1.0, 1.0, 2.0, 2.0, 3.0}, 10);
    EXPECT_EQ(trace.segmentCount(), 3u);
    EXPECT_DOUBLE_EQ(trace.valueAt(29), 1.0);
    EXPECT_DOUBLE_EQ(trace.valueAt(30), 2.0);
    EXPECT_DOUBLE_EQ(trace.valueAt(50), 3.0);
}

TEST(PowerTrace, MinMaxMean)
{
    PowerTrace trace({{0, 1.0}, {100, 3.0}});
    EXPECT_DOUBLE_EQ(trace.maxValue(), 3.0);
    EXPECT_DOUBLE_EQ(trace.minValue(), 1.0);
    // Over [0, 200): 100 ticks at 1.0 + 100 ticks at 3.0 -> mean 2.0.
    EXPECT_DOUBLE_EQ(trace.meanValue(200), 2.0);
    // Over [0, 100): only the first value.
    EXPECT_DOUBLE_EQ(trace.meanValue(100), 1.0);
    // Over [0, 400): 100 at 1.0, 300 at 3.0 -> 2.5.
    EXPECT_DOUBLE_EQ(trace.meanValue(400), 2.5);
}

TEST(PowerTrace, Scaled)
{
    PowerTrace trace({{0, 1.0}, {100, 3.0}});
    const PowerTrace doubled = trace.scaled(2.0);
    EXPECT_DOUBLE_EQ(doubled.valueAt(0), 2.0);
    EXPECT_DOUBLE_EQ(doubled.valueAt(100), 6.0);
}

TEST(PowerTrace, CsvRoundTrip)
{
    PowerTrace trace({{0, 1.5}, {10'000, 0.25}});
    std::ostringstream out;
    trace.writeCsv(out);
    std::istringstream in(out.str());
    const PowerTrace parsed = PowerTrace::readCsv(in);
    EXPECT_EQ(parsed.segmentCount(), 2u);
    EXPECT_DOUBLE_EQ(parsed.valueAt(0), 1.5);
    EXPECT_DOUBLE_EQ(parsed.valueAt(10'000), 0.25);
}

TEST(PowerTraceDeathTest, UnsortedSegmentsPanic)
{
    EXPECT_DEATH(PowerTrace({{100, 1.0}, {50, 2.0}}), "sorted");
}

} // namespace
} // namespace energy
} // namespace quetzal
