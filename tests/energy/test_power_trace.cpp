/**
 * @file
 * Tests for energy::PowerTrace and its amortized-O(1) Cursor.
 */

#include <random>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "energy/power_trace.hpp"

namespace quetzal {
namespace energy {
namespace {

TEST(PowerTrace, EmptyTraceIsZero)
{
    PowerTrace trace;
    EXPECT_EQ(trace.valueAt(0), 0.0);
    EXPECT_EQ(trace.valueAt(12345), 0.0);
    EXPECT_EQ(trace.nextChangeAfter(0), kTickNever);
    EXPECT_EQ(trace.maxValue(), 0.0);
}

TEST(PowerTrace, ConstantTrace)
{
    const PowerTrace trace = PowerTrace::constant(5e-3);
    EXPECT_DOUBLE_EQ(trace.valueAt(0), 5e-3);
    EXPECT_DOUBLE_EQ(trace.valueAt(1'000'000), 5e-3);
    EXPECT_EQ(trace.nextChangeAfter(0), kTickNever);
}

TEST(PowerTrace, PointQueries)
{
    PowerTrace trace({{0, 1.0}, {100, 2.0}, {250, 0.5}});
    EXPECT_DOUBLE_EQ(trace.valueAt(0), 1.0);
    EXPECT_DOUBLE_EQ(trace.valueAt(99), 1.0);
    EXPECT_DOUBLE_EQ(trace.valueAt(100), 2.0);
    EXPECT_DOUBLE_EQ(trace.valueAt(249), 2.0);
    EXPECT_DOUBLE_EQ(trace.valueAt(250), 0.5);
    EXPECT_DOUBLE_EQ(trace.valueAt(9999), 0.5);
}

TEST(PowerTrace, ValueBeforeFirstSegmentExtendsBackward)
{
    PowerTrace trace({{50, 3.0}});
    EXPECT_DOUBLE_EQ(trace.valueAt(0), 3.0);
    EXPECT_DOUBLE_EQ(trace.valueAt(49), 3.0);
}

TEST(PowerTrace, NextChangeAfter)
{
    PowerTrace trace({{0, 1.0}, {100, 2.0}, {250, 0.5}});
    EXPECT_EQ(trace.nextChangeAfter(0), 100);
    EXPECT_EQ(trace.nextChangeAfter(99), 100);
    EXPECT_EQ(trace.nextChangeAfter(100), 250);
    EXPECT_EQ(trace.nextChangeAfter(250), kTickNever);
}

TEST(PowerTrace, NextChangeSkipsEqualValues)
{
    PowerTrace trace;
    trace.append(0, 1.0);
    trace.append(10, 1.0); // no actual change
    trace.append(20, 2.0);
    EXPECT_EQ(trace.nextChangeAfter(0), 20);
}

TEST(PowerTrace, FromSamplesMergesRuns)
{
    const PowerTrace trace =
        PowerTrace::fromSamples({1.0, 1.0, 1.0, 2.0, 2.0, 3.0}, 10);
    EXPECT_EQ(trace.segmentCount(), 3u);
    EXPECT_DOUBLE_EQ(trace.valueAt(29), 1.0);
    EXPECT_DOUBLE_EQ(trace.valueAt(30), 2.0);
    EXPECT_DOUBLE_EQ(trace.valueAt(50), 3.0);
}

TEST(PowerTrace, MinMaxMean)
{
    PowerTrace trace({{0, 1.0}, {100, 3.0}});
    EXPECT_DOUBLE_EQ(trace.maxValue(), 3.0);
    EXPECT_DOUBLE_EQ(trace.minValue(), 1.0);
    // Over [0, 200): 100 ticks at 1.0 + 100 ticks at 3.0 -> mean 2.0.
    EXPECT_DOUBLE_EQ(trace.meanValue(200), 2.0);
    // Over [0, 100): only the first value.
    EXPECT_DOUBLE_EQ(trace.meanValue(100), 1.0);
    // Over [0, 400): 100 at 1.0, 300 at 3.0 -> 2.5.
    EXPECT_DOUBLE_EQ(trace.meanValue(400), 2.5);
}

TEST(PowerTrace, Scaled)
{
    PowerTrace trace({{0, 1.0}, {100, 3.0}});
    const PowerTrace doubled = trace.scaled(2.0);
    EXPECT_DOUBLE_EQ(doubled.valueAt(0), 2.0);
    EXPECT_DOUBLE_EQ(doubled.valueAt(100), 6.0);
}

TEST(PowerTrace, CsvRoundTrip)
{
    PowerTrace trace({{0, 1.5}, {10'000, 0.25}});
    std::ostringstream out;
    trace.writeCsv(out);
    std::istringstream in(out.str());
    const PowerTrace parsed = PowerTrace::readCsv(in);
    EXPECT_EQ(parsed.segmentCount(), 2u);
    EXPECT_DOUBLE_EQ(parsed.valueAt(0), 1.5);
    EXPECT_DOUBLE_EQ(parsed.valueAt(10'000), 0.25);
}

TEST(PowerTraceDeathTest, UnsortedSegmentsPanic)
{
    EXPECT_DEATH(PowerTrace({{100, 1.0}, {50, 2.0}}), "sorted");
}

// --- Cursor ---------------------------------------------------------
//
// The contract: a Cursor answers valueAt / nextChangeAfter exactly as
// the owning trace does, for any query sequence (the fast path is
// monotone non-decreasing ticks; backward queries re-seek).

/** A randomized piecewise-constant trace with some equal-value runs. */
PowerTrace
randomTrace(std::uint32_t seed, std::size_t segments)
{
    std::mt19937 rng(seed);
    std::uniform_int_distribution<Tick> gap(1, 500);
    // Few distinct levels so consecutive equal values happen often.
    std::uniform_int_distribution<int> level(0, 3);
    PowerTrace trace;
    Tick start = gap(rng);
    for (std::size_t i = 0; i < segments; ++i) {
        trace.append(start, static_cast<double>(level(rng)) * 1e-3);
        start += gap(rng);
    }
    return trace;
}

TEST(PowerTraceCursor, MatchesTraceOnMonotoneQueries)
{
    for (std::uint32_t seed = 1; seed <= 5; ++seed) {
        const PowerTrace trace = randomTrace(seed, 64);
        PowerTrace::Cursor cursor = trace.cursor();
        std::mt19937 rng(seed ^ 0xc0ffeeu);
        std::uniform_int_distribution<Tick> step(0, 40);
        Tick tick = 0;
        for (int i = 0; i < 4000; ++i) {
            EXPECT_EQ(cursor.valueAt(tick), trace.valueAt(tick))
                << "seed " << seed << " tick " << tick;
            EXPECT_EQ(cursor.nextChangeAfter(tick),
                      trace.nextChangeAfter(tick))
                << "seed " << seed << " tick " << tick;
            tick += step(rng); // non-decreasing, sometimes repeated
        }
    }
}

TEST(PowerTraceCursor, MatchesTraceOnArbitraryQueries)
{
    // Backward jumps force the re-seek path.
    const PowerTrace trace = randomTrace(7, 48);
    PowerTrace::Cursor cursor = trace.cursor();
    std::mt19937 rng(99);
    std::uniform_int_distribution<Tick> anywhere(0, 20'000);
    for (int i = 0; i < 4000; ++i) {
        const Tick tick = anywhere(rng);
        EXPECT_EQ(cursor.valueAt(tick), trace.valueAt(tick))
            << "tick " << tick;
        EXPECT_EQ(cursor.nextChangeAfter(tick),
                  trace.nextChangeAfter(tick))
            << "tick " << tick;
    }
}

TEST(PowerTraceCursor, ResetRestartsFromTheFront)
{
    const PowerTrace trace = randomTrace(11, 32);
    PowerTrace::Cursor cursor = trace.cursor();
    (void)cursor.valueAt(15'000); // advance deep into the trace
    cursor.reset();
    for (Tick tick = 0; tick < 2'000; tick += 13) {
        EXPECT_EQ(cursor.valueAt(tick), trace.valueAt(tick));
        EXPECT_EQ(cursor.nextChangeAfter(tick),
                  trace.nextChangeAfter(tick));
    }
}

TEST(PowerTraceCursor, SkipsEqualValueSegments)
{
    PowerTrace trace;
    trace.append(0, 1.0);
    trace.append(10, 1.0); // no actual change
    trace.append(20, 1.0); // still none
    trace.append(30, 2.0);
    PowerTrace::Cursor cursor = trace.cursor();
    EXPECT_EQ(cursor.nextChangeAfter(0), 30);
    EXPECT_EQ(cursor.nextChangeAfter(15), 30);
    EXPECT_EQ(cursor.nextChangeAfter(30), kTickNever);
}

TEST(PowerTraceCursor, BeforeFirstSegmentExtendsBackward)
{
    PowerTrace trace({{50, 3.0}, {80, 4.0}});
    PowerTrace::Cursor cursor = trace.cursor();
    EXPECT_DOUBLE_EQ(cursor.valueAt(0), 3.0);
    EXPECT_EQ(cursor.nextChangeAfter(0), 80);
    EXPECT_DOUBLE_EQ(cursor.valueAt(80), 4.0);
    EXPECT_EQ(cursor.nextChangeAfter(80), kTickNever);
}

TEST(PowerTraceCursor, EmptyAndDefaultCursorsAreZero)
{
    PowerTrace empty;
    PowerTrace::Cursor cursor = empty.cursor();
    EXPECT_EQ(cursor.valueAt(123), 0.0);
    EXPECT_EQ(cursor.nextChangeAfter(123), kTickNever);

    PowerTrace::Cursor unbound;
    EXPECT_EQ(unbound.valueAt(0), 0.0);
    EXPECT_EQ(unbound.nextChangeAfter(0), kTickNever);
}

} // namespace
} // namespace energy
} // namespace quetzal
