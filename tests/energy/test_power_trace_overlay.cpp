/**
 * @file
 * Tests for PowerTrace::overlaid(), the multiplicative window splice
 * the fault layer uses for harvest dropouts (factor 0) and spikes
 * (factor > 1): inside a window the value scales, outside every
 * window the result is value-identical to the original, and invalid
 * window lists are rejected loudly.
 */

#include <gtest/gtest.h>

#include "energy/power_trace.hpp"

namespace quetzal {
namespace energy {
namespace {

PowerTrace
stairTrace()
{
    return PowerTrace({{0, 1.0}, {100, 2.0}, {250, 0.5}, {400, 3.0}});
}

/** Value-compare two traces over a tick range (exhaustive). */
void
expectSameValues(const PowerTrace &a, const PowerTrace &b, Tick from,
                 Tick to)
{
    for (Tick t = from; t <= to; ++t)
        ASSERT_DOUBLE_EQ(a.valueAt(t), b.valueAt(t)) << "tick " << t;
}

TEST(PowerTraceOverlay, EmptyWindowListIsIdentity)
{
    const PowerTrace clean = stairTrace();
    const PowerTrace same = clean.overlaid({});
    expectSameValues(clean, same, 0, 500);
    EXPECT_EQ(same.segmentCount(), clean.segmentCount());
}

TEST(PowerTraceOverlay, UnityFactorWindowsAreDropped)
{
    const PowerTrace clean = stairTrace();
    const PowerTrace same =
        clean.overlaid({{50, 150, 1.0}, {200, 300, 1.0}});
    expectSameValues(clean, same, 0, 500);
}

TEST(PowerTraceOverlay, EmptyWindowsAreDropped)
{
    const PowerTrace clean = stairTrace();
    const PowerTrace same = clean.overlaid({{50, 50, 0.0}});
    expectSameValues(clean, same, 0, 500);
}

TEST(PowerTraceOverlay, DropoutZeroesExactlyInsideWindow)
{
    const PowerTrace clean = stairTrace();
    const PowerTrace faulted = clean.overlaid({{120, 300, 0.0}});
    // Right-open: 119 clean, 120..299 zero, 300 clean again.
    EXPECT_DOUBLE_EQ(faulted.valueAt(119), clean.valueAt(119));
    for (Tick t = 120; t < 300; ++t)
        ASSERT_DOUBLE_EQ(faulted.valueAt(t), 0.0) << "tick " << t;
    EXPECT_DOUBLE_EQ(faulted.valueAt(300), clean.valueAt(300));
    expectSameValues(clean, faulted, 0, 119);
    expectSameValues(clean, faulted, 300, 500);
}

TEST(PowerTraceOverlay, SpikeMultipliesAcrossSegmentBoundaries)
{
    const PowerTrace clean = stairTrace();
    const PowerTrace faulted = clean.overlaid({{80, 260, 4.0}});
    // The window spans three underlying segments; each scales.
    for (Tick t = 80; t < 260; ++t)
        ASSERT_DOUBLE_EQ(faulted.valueAt(t), 4.0 * clean.valueAt(t))
            << "tick " << t;
    expectSameValues(clean, faulted, 0, 79);
    expectSameValues(clean, faulted, 260, 500);
}

TEST(PowerTraceOverlay, MultipleWindowsComposeIndependently)
{
    const PowerTrace clean = stairTrace();
    const PowerTrace faulted =
        clean.overlaid({{10, 20, 0.0}, {150, 200, 2.0}, {450, 460, 0.5}});
    for (Tick t = 10; t < 20; ++t)
        ASSERT_DOUBLE_EQ(faulted.valueAt(t), 0.0);
    for (Tick t = 150; t < 200; ++t)
        ASSERT_DOUBLE_EQ(faulted.valueAt(t), 2.0 * clean.valueAt(t));
    for (Tick t = 450; t < 460; ++t)
        ASSERT_DOUBLE_EQ(faulted.valueAt(t), 0.5 * clean.valueAt(t));
    expectSameValues(clean, faulted, 20, 149);
    expectSameValues(clean, faulted, 200, 449);
    expectSameValues(clean, faulted, 460, 500);
}

TEST(PowerTraceOverlay, WindowBeyondLastSegmentScalesExtension)
{
    // The trace extends its final value forever; a window out there
    // must scale the extension and then restore it.
    const PowerTrace clean = stairTrace();
    const PowerTrace faulted = clean.overlaid({{1000, 1100, 0.0}});
    EXPECT_DOUBLE_EQ(faulted.valueAt(999), 3.0);
    EXPECT_DOUBLE_EQ(faulted.valueAt(1000), 0.0);
    EXPECT_DOUBLE_EQ(faulted.valueAt(1099), 0.0);
    EXPECT_DOUBLE_EQ(faulted.valueAt(1100), 3.0);
    EXPECT_DOUBLE_EQ(faulted.valueAt(100000), 3.0);
}

TEST(PowerTraceOverlay, EmptyTraceStaysEmpty)
{
    const PowerTrace clean;
    const PowerTrace same = clean.overlaid({{0, 100, 0.0}});
    EXPECT_EQ(same.segmentCount(), 0u);
    EXPECT_DOUBLE_EQ(same.valueAt(50), 0.0);
}

TEST(PowerTraceOverlay, RejectsUnsortedWindows)
{
    const PowerTrace clean = stairTrace();
    EXPECT_DEATH(clean.overlaid({{200, 300, 0.0}, {100, 150, 0.0}}),
                 "sorted");
}

TEST(PowerTraceOverlay, RejectsOverlappingWindows)
{
    const PowerTrace clean = stairTrace();
    EXPECT_DEATH(clean.overlaid({{100, 300, 0.0}, {200, 400, 2.0}}),
                 "overlap");
}

} // namespace
} // namespace energy
} // namespace quetzal
