/**
 * @file
 * Tests for the supercapacitor energy-storage model.
 */

#include <gtest/gtest.h>

#include "energy/energy_storage.hpp"

namespace quetzal {
namespace energy {
namespace {

StorageConfig
paperConfig()
{
    // The paper's 33 mF supercap between 1.8 V and 3.3 V.
    return StorageConfig{};
}

TEST(StorageConfig, CapacityMatchesFormula)
{
    const StorageConfig cfg = paperConfig();
    // E = C/2 (vMax^2 - vOff^2) = 0.0165 * (10.89 - 3.24) = 0.1262 J
    EXPECT_NEAR(cfg.capacity(), 0.5 * 33e-3 * (3.3 * 3.3 - 1.8 * 1.8),
                1e-12);
    EXPECT_NEAR(cfg.restartEnergy(),
                0.5 * 33e-3 * (2.2 * 2.2 - 1.8 * 1.8), 1e-12);
    EXPECT_LT(cfg.restartEnergy(), cfg.capacity());
}

TEST(EnergyStorage, StartsFullByDefault)
{
    EnergyStorage storage(paperConfig());
    EXPECT_TRUE(storage.full());
    EXPECT_FALSE(storage.depleted());
    EXPECT_NEAR(storage.voltage(), 3.3, 1e-9);
}

TEST(EnergyStorage, StartsEmptyWhenRequested)
{
    EnergyStorage storage(paperConfig(), false);
    EXPECT_TRUE(storage.depleted());
    EXPECT_NEAR(storage.voltage(), 1.8, 1e-9);
}

TEST(EnergyStorage, HarvestClampsAtCapacity)
{
    EnergyStorage storage(paperConfig(), false);
    const Joules accepted = storage.harvest(1.0);
    EXPECT_NEAR(accepted, storage.capacity(), 1e-12);
    EXPECT_TRUE(storage.full());
    EXPECT_EQ(storage.harvest(0.5), 0.0);
}

TEST(EnergyStorage, DrawClampsAtZero)
{
    EnergyStorage storage(paperConfig());
    const Joules cap = storage.capacity();
    EXPECT_NEAR(storage.draw(cap / 2.0), cap / 2.0, 1e-12);
    EXPECT_NEAR(storage.draw(cap), cap / 2.0, 1e-12);
    EXPECT_TRUE(storage.depleted());
}

TEST(EnergyStorage, ConservationUnderRandomOps)
{
    EnergyStorage storage(paperConfig(), false);
    Joules tracked = 0.0;
    for (int i = 0; i < 1000; ++i) {
        tracked += storage.harvest(1e-3);
        tracked -= storage.draw(0.7e-3);
        EXPECT_NEAR(storage.energy(), tracked, 1e-9);
        EXPECT_GE(storage.energy(), 0.0);
        EXPECT_LE(storage.energy(), storage.capacity() + 1e-12);
    }
}

TEST(EnergyStorage, VoltageMonotoneInEnergy)
{
    EnergyStorage storage(paperConfig(), false);
    Volts previous = storage.voltage();
    for (int i = 0; i < 20; ++i) {
        storage.harvest(storage.capacity() / 20.0);
        EXPECT_GT(storage.voltage(), previous);
        previous = storage.voltage();
    }
    EXPECT_NEAR(previous, 3.3, 1e-6);
}

TEST(EnergyStorage, DeficitToRestart)
{
    EnergyStorage storage(paperConfig(), false);
    EXPECT_NEAR(storage.deficitToRestart(),
                storage.config().restartEnergy(), 1e-12);
    storage.harvest(storage.config().restartEnergy());
    EXPECT_NEAR(storage.deficitToRestart(), 0.0, 1e-12);
    storage.harvest(1e-3);
    EXPECT_EQ(storage.deficitToRestart(), 0.0);
}

TEST(EnergyStorage, ResetRestoresRails)
{
    EnergyStorage storage(paperConfig());
    storage.draw(storage.capacity());
    storage.reset(true);
    EXPECT_TRUE(storage.full());
    storage.reset(false);
    EXPECT_TRUE(storage.depleted());
}

TEST(EnergyStorageDeathTest, InvalidConfigIsFatal)
{
    StorageConfig bad = paperConfig();
    bad.vOn = 1.0; // below vOff
    EXPECT_EXIT(EnergyStorage{bad}, ::testing::ExitedWithCode(1),
                "voltage window");
}

} // namespace
} // namespace energy
} // namespace quetzal
