/**
 * @file
 * Tests for the synthetic solar irradiance generator — the properties
 * the Quetzal evaluation depends on (DESIGN.md section 2).
 */

#include <algorithm>

#include <gtest/gtest.h>

#include "energy/solar_model.hpp"

namespace quetzal {
namespace energy {
namespace {

SolarConfig
testConfig()
{
    SolarConfig cfg;
    cfg.seed = 99;
    return cfg;
}

TEST(SolarModel, Deterministic)
{
    const Tick twoDays = secondsToTicks(2 * 86400.0);
    const PowerTrace a = SolarModel(testConfig()).generate(twoDays);
    const PowerTrace b = SolarModel(testConfig()).generate(twoDays);
    ASSERT_EQ(a.segmentCount(), b.segmentCount());
    for (std::size_t i = 0; i < a.segmentCount(); ++i) {
        EXPECT_EQ(a.data()[i].start, b.data()[i].start);
        EXPECT_EQ(a.data()[i].value, b.data()[i].value);
    }
}

TEST(SolarModel, SeedChangesClouds)
{
    const Tick day = secondsToTicks(86400.0);
    SolarConfig other = testConfig();
    other.seed = 100;
    const PowerTrace a = SolarModel(testConfig()).generate(day);
    const PowerTrace b = SolarModel(other).generate(day);
    bool anyDifferent = false;
    for (Tick t = 0; t < day; t += secondsToTicks(600.0))
        anyDifferent = anyDifferent || a.valueAt(t) != b.valueAt(t);
    EXPECT_TRUE(anyDifferent);
}

TEST(SolarModel, BoundsRespected)
{
    const SolarConfig cfg = testConfig();
    const Tick twoDays = secondsToTicks(2 * 86400.0);
    const PowerTrace trace = SolarModel(cfg).generate(twoDays);
    EXPECT_GE(trace.minValue(), cfg.ambientFloor - 1e-12);
    EXPECT_LE(trace.maxValue(), cfg.peakIrradiance + 1e-12);
}

TEST(SolarModel, NightFallsToFloor)
{
    const SolarConfig cfg = testConfig();
    const Tick twoDays = secondsToTicks(2 * 86400.0);
    const PowerTrace trace = SolarModel(cfg).generate(twoDays);
    // The trace starts at 6 am; midnight is 18 h in.
    const Tick midnight = secondsToTicks(18.0 * 3600.0);
    EXPECT_NEAR(trace.valueAt(midnight), cfg.ambientFloor, 1e-9);
}

TEST(SolarModel, MiddayAboveNight)
{
    const SolarConfig cfg = testConfig();
    const Tick twoDays = secondsToTicks(2 * 86400.0);
    const PowerTrace trace = SolarModel(cfg).generate(twoDays);
    const Tick noon = secondsToTicks(6.0 * 3600.0); // 6 h after 6 am
    const Tick midnight = secondsToTicks(18.0 * 3600.0);
    EXPECT_GT(trace.valueAt(noon), 5.0 * trace.valueAt(midnight));
}

TEST(SolarModel, CloudsCreateIntraDayVariation)
{
    const SolarConfig cfg = testConfig();
    const PowerTrace trace =
        SolarModel(cfg).generate(secondsToTicks(86400.0));
    // Sample the middle of the day; clouds should produce meaningful
    // spread relative to the clear-sky arc.
    double lo = 1.0;
    double hi = 0.0;
    for (double hour = 4.0; hour <= 8.0; hour += 0.05) {
        const double v = trace.valueAt(secondsToTicks(hour * 3600.0));
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    EXPECT_GT(hi, lo * 1.2);
}

TEST(SolarModel, DatasheetMaxRarelyApproached)
{
    // The property that defeats the ZGO baseline (section 6.1): real
    // traces sit well below the rated maximum (irradiance 1.0).
    const SolarConfig cfg = testConfig();
    const PowerTrace trace =
        SolarModel(cfg).generate(secondsToTicks(5 * 86400.0));
    EXPECT_LT(trace.maxValue(), 0.7);
}

TEST(SolarModelDeathTest, InvalidConfigIsFatal)
{
    SolarConfig bad = testConfig();
    bad.sampleSeconds = 0.0;
    EXPECT_EXIT(SolarModel{bad}, ::testing::ExitedWithCode(1), "sample");
}

} // namespace
} // namespace energy
} // namespace quetzal
