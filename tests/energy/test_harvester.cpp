/**
 * @file
 * Tests for the harvester front end.
 */

#include <gtest/gtest.h>

#include "energy/harvester.hpp"

namespace quetzal {
namespace energy {
namespace {

TEST(Harvester, DatasheetMaxScalesWithCells)
{
    HarvesterConfig cfg;
    cfg.cellCount = 6;
    cfg.cellRatedPower = 30e-3;
    cfg.converterEfficiency = 0.8;
    const Harvester six(cfg);
    cfg.cellCount = 3;
    const Harvester three(cfg);
    EXPECT_NEAR(six.datasheetMaxPower(), 2.0 * three.datasheetMaxPower(),
                1e-12);
    EXPECT_NEAR(six.datasheetMaxPower(), 6 * 30e-3 * 0.8, 1e-12);
}

TEST(Harvester, PowerFromIrradiance)
{
    const Harvester harvester{HarvesterConfig{}};
    EXPECT_DOUBLE_EQ(harvester.powerFromIrradiance(0.0), 0.0);
    EXPECT_DOUBLE_EQ(harvester.powerFromIrradiance(-1.0), 0.0);
    EXPECT_NEAR(harvester.powerFromIrradiance(1.0),
                harvester.datasheetMaxPower(), 1e-12);
    EXPECT_NEAR(harvester.powerFromIrradiance(0.5),
                0.5 * harvester.datasheetMaxPower(), 1e-12);
}

TEST(Harvester, TraceScaling)
{
    const Harvester harvester{HarvesterConfig{}};
    PowerTrace irradiance({{0, 0.25}, {1000, 0.5}});
    const PowerTrace watts = harvester.powerTrace(irradiance);
    EXPECT_NEAR(watts.valueAt(0),
                0.25 * harvester.datasheetMaxPower(), 1e-12);
    EXPECT_NEAR(watts.valueAt(1000),
                0.5 * harvester.datasheetMaxPower(), 1e-12);
}

TEST(HarvesterDeathTest, InvalidConfigIsFatal)
{
    HarvesterConfig bad;
    bad.cellCount = 0;
    EXPECT_EXIT(Harvester{bad}, ::testing::ExitedWithCode(1), "cell");
    HarvesterConfig badEff;
    badEff.converterEfficiency = 1.5;
    EXPECT_EXIT(Harvester{badEff}, ::testing::ExitedWithCode(1),
                "efficiency");
}

} // namespace
} // namespace energy
} // namespace quetzal
