/**
 * @file
 * Policy registry tests: every registered name resolves to a fresh
 * policy reporting that name, the incumbent controller keeps the
 * legacy component names the rest of the suite pins, and unknown
 * names die loudly instead of silently running the wrong policy.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "policy/registry.hpp"

namespace quetzal {
namespace policy {
namespace {

TEST(PolicyRegistry, NamesAreUniqueAndResolvable)
{
    const std::vector<std::string> &names = registeredPolicyNames();
    ASSERT_GE(names.size(), 4u);
    const std::set<std::string> unique(names.begin(), names.end());
    EXPECT_EQ(unique.size(), names.size());
    for (const std::string &name : names) {
        SCOPED_TRACE(name);
        EXPECT_TRUE(isRegisteredPolicy(name));
        const auto policy = makePolicy(name);
        ASSERT_NE(policy, nullptr);
        EXPECT_EQ(policy->name(), name);
    }
}

TEST(PolicyRegistry, TournamentEntrantsAreRegistered)
{
    EXPECT_TRUE(isRegisteredPolicy("sjf-ibo"));
    EXPECT_TRUE(isRegisteredPolicy("zygarde"));
    EXPECT_TRUE(isRegisteredPolicy("delgado-famaey"));
    EXPECT_TRUE(isRegisteredPolicy("greedy-fcfs"));
    EXPECT_FALSE(isRegisteredPolicy(""));
    EXPECT_FALSE(isRegisteredPolicy("SJF-IBO"));
    EXPECT_FALSE(isRegisteredPolicy("round-robin"));
}

TEST(PolicyRegistry, UnknownPolicyNameDies)
{
    EXPECT_DEATH((void)makePolicy("round-robin"), "unknown policy");
    EXPECT_DEATH((void)makePolicyController("round-robin"),
                 "unknown policy");
}

TEST(PolicyRegistry, IncumbentControllerKeepsLegacyComponentNames)
{
    const auto controller = makePolicyController("sjf-ibo");
    ASSERT_NE(controller, nullptr);
    EXPECT_EQ(controller->name(), "sjf-ibo");
    // The composite forwards the wrapped pair's names, so telemetry
    // and tests keyed on the incumbent's components keep working.
    EXPECT_EQ(controller->scheduler().name(), "energy-aware-sjf");
    EXPECT_EQ(controller->adaptation().name(), "ibo-engine");
}

TEST(PolicyRegistry, ZooControllersReportThePolicyNameForBothHalves)
{
    for (const char *name : {"zygarde", "delgado-famaey",
                             "greedy-fcfs"}) {
        SCOPED_TRACE(name);
        const auto controller = makePolicyController(name);
        ASSERT_NE(controller, nullptr);
        EXPECT_EQ(controller->name(), name);
        EXPECT_EQ(controller->scheduler().name(), name);
        EXPECT_EQ(controller->adaptation().name(), name);
    }
}

} // namespace
} // namespace policy
} // namespace quetzal
