/**
 * @file
 * Incumbent-equivalence and determinism differentials for the policy
 * layer.
 *
 *  - The ported incumbent (--policy sjf-ibo) reproduces the
 *    pre-refactor controller (ControllerKind::Quetzal) byte-for-byte:
 *    identical metrics and an identical full-telemetry JSONL stream
 *    on fig09-, fig12- and fault_sweep-style configurations.
 *  - Every registered policy produces byte-identical telemetry on
 *    the tick and event engines, and across --jobs 1 / --jobs 4
 *    ensemble execution.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/trace_io.hpp"
#include "obs/trace_sink.hpp"
#include "policy/registry.hpp"
#include "sim/experiment.hpp"
#include "sim/runner.hpp"

namespace quetzal {
namespace policy {
namespace {

/** Serialize one run's full telemetry to a JSONL string. */
std::string
traceOf(sim::ExperimentConfig config)
{
    obs::VectorSink sink;
    config.obsLevel = obs::ObsLevel::Full;
    config.obsSink = &sink;
    (void)sim::runExperiment(config);
    std::ostringstream out;
    obs::writeJsonlHeader(out);
    obs::writeJsonl(out, sink.events(), 0);
    return out.str();
}

void
expectIdenticalMetrics(const sim::Metrics &a, const sim::Metrics &b)
{
    EXPECT_EQ(a.interestingDiscardedTotal(),
              b.interestingDiscardedTotal());
    EXPECT_EQ(a.iboDropsInteresting, b.iboDropsInteresting);
    EXPECT_EQ(a.iboDropsUninteresting, b.iboDropsUninteresting);
    EXPECT_EQ(a.txInterestingHq, b.txInterestingHq);
    EXPECT_EQ(a.txInterestingLq, b.txInterestingLq);
    EXPECT_EQ(a.jobsCompleted, b.jobsCompleted);
    EXPECT_EQ(a.degradedJobs, b.degradedJobs);
    EXPECT_EQ(a.powerFailures, b.powerFailures);
    EXPECT_EQ(a.deadlineMisses, b.deadlineMisses);
    EXPECT_EQ(a.energyWastedJoules, b.energyWastedJoules);
    EXPECT_EQ(a.simulatedTicks, b.simulatedTicks);
}

struct EquivalenceCase
{
    const char *name;
    sim::ExperimentConfig config;
};

/** Small-event variants of the committed scenario families. */
std::vector<EquivalenceCase>
equivalenceCases()
{
    std::vector<EquivalenceCase> cases;

    // fig09-style: the headline environment sweep cell.
    sim::ExperimentConfig fig09;
    fig09.environment = trace::EnvironmentPreset::Crowded;
    fig09.eventCount = 30;
    fig09.seed = 42;
    fig09.sim.bufferCapacity = 10;
    cases.push_back({"fig09", fig09});

    // fig12-style: MSP430 device, short environment, smaller buffer.
    sim::ExperimentConfig fig12;
    fig12.device = app::DeviceKind::Msp430;
    fig12.environment = trace::EnvironmentPreset::Msp430Short;
    fig12.eventCount = 30;
    fig12.seed = 5;
    fig12.sim.bufferCapacity = 6;
    cases.push_back({"fig12", fig12});

    // fault_sweep-style: power dropouts/spikes plus arrival bursts.
    sim::ExperimentConfig faulted;
    faulted.environment = trace::EnvironmentPreset::Crowded;
    faulted.eventCount = 30;
    faulted.seed = 7;
    faulted.sim.bufferCapacity = 8;
    faulted.faults.seed = 11;
    faulted.faults.powerTrace.dropoutsPerHour = 12.0;
    faulted.faults.powerTrace.dropoutSeconds = 5.0;
    faulted.faults.powerTrace.spikesPerHour = 12.0;
    faulted.faults.powerTrace.spikeSeconds = 2.0;
    faulted.faults.powerTrace.spikeFactor = 3.0;
    faulted.faults.arrivals.burstsPerHour = 12.0;
    faulted.faults.arrivals.burstSeconds = 10.0;
    cases.push_back({"fault_sweep", faulted});

    return cases;
}

TEST(PolicyEquivalence, PortedIncumbentMatchesLegacyControllerExactly)
{
    for (const EquivalenceCase &c : equivalenceCases()) {
        SCOPED_TRACE(c.name);

        sim::ExperimentConfig legacy = c.config;
        legacy.controller = sim::ControllerKind::Quetzal;
        sim::ExperimentConfig ported = c.config;
        ported.policyName = "sjf-ibo";

        expectIdenticalMetrics(sim::runExperiment(legacy),
                               sim::runExperiment(ported));
        const std::string legacyTrace = traceOf(legacy);
        ASSERT_FALSE(legacyTrace.empty());
        EXPECT_EQ(legacyTrace, traceOf(ported));
    }
}

TEST(PolicyEquivalence, EveryPolicyIsByteIdenticalAcrossEngines)
{
    for (const std::string &name : registeredPolicyNames()) {
        SCOPED_TRACE(name);
        sim::ExperimentConfig config;
        config.policyName = name;
        config.eventCount = 30;
        config.seed = 42;
        config.sim.bufferCapacity = 8;

        sim::ExperimentConfig tick = config;
        tick.sim.engine = sim::EngineKind::Tick;
        sim::ExperimentConfig event = config;
        event.sim.engine = sim::EngineKind::Event;

        expectIdenticalMetrics(sim::runExperiment(tick),
                               sim::runExperiment(event));
        const std::string tickTrace = traceOf(tick);
        ASSERT_FALSE(tickTrace.empty());
        EXPECT_EQ(tickTrace, traceOf(event));
    }
}

TEST(PolicyEquivalence, EveryPolicyIsByteIdenticalAcrossJobCounts)
{
    // One run per registered policy, executed as an ensemble on one
    // worker and on four; the serialized streams must agree run for
    // run (the contract scripts/check_scenarios.sh enforces for the
    // committed tournament).
    const std::vector<std::string> &names = registeredPolicyNames();

    const auto traceAll = [&](unsigned jobs) {
        std::vector<obs::VectorSink> sinks(names.size());
        std::vector<sim::ExperimentConfig> configs;
        for (std::size_t i = 0; i < names.size(); ++i) {
            sim::ExperimentConfig config;
            config.policyName = names[i];
            config.eventCount = 30;
            config.seed = 42;
            config.sim.bufferCapacity = 8;
            config.obsLevel = obs::ObsLevel::Full;
            config.obsSink = &sinks[i];
            configs.push_back(std::move(config));
        }
        sim::ParallelRunner runner(jobs);
        (void)runner.runBatch(configs);
        std::vector<std::string> traces;
        for (std::size_t i = 0; i < sinks.size(); ++i) {
            std::ostringstream out;
            obs::writeJsonl(out, sinks[i].events(), i);
            traces.push_back(out.str());
        }
        return traces;
    };

    const std::vector<std::string> serial = traceAll(1);
    const std::vector<std::string> parallel = traceAll(4);
    ASSERT_EQ(serial.size(), names.size());
    for (std::size_t i = 0; i < names.size(); ++i) {
        SCOPED_TRACE(names[i]);
        ASSERT_FALSE(serial[i].empty());
        EXPECT_EQ(serial[i], parallel[i]);
    }
}

} // namespace
} // namespace policy
} // namespace quetzal
