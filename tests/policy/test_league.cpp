/**
 * @file
 * Golden tournament report test: the committed
 * scenarios/tournament.json, run at the check_scenarios.sh event
 * count (50), must print exactly the league table committed at
 * scenarios/golden/tournament.50.txt — on one worker and on four.
 * Intentional format or standings changes regenerate the reference:
 *
 *   QUETZAL_REGEN_GOLDEN=1 ./test_policy --gtest_filter='LeagueGolden.*'
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "scenario/engine.hpp"
#include "scenario/spec.hpp"

#ifndef QUETZAL_SCENARIO_DIR
#error "build must define QUETZAL_SCENARIO_DIR"
#endif

namespace quetzal {
namespace scenario {
namespace {

constexpr std::size_t kEvents = 50;

std::string
runTournament(unsigned jobs)
{
    const std::string path =
        std::string(QUETZAL_SCENARIO_DIR) + "/tournament.json";
    const Expected<ScenarioSpec> spec = loadScenarioFile(path);
    EXPECT_TRUE(spec.ok());
    if (!spec.ok())
        return {};
    const Expected<ScenarioPlan> plan = compileScenario(*spec.value);
    EXPECT_TRUE(plan.ok());
    if (!plan.ok())
        return {};

    EngineOptions options;
    options.jobs = jobs;
    options.eventCountOverride = kEvents;
    testing::internal::CaptureStdout();
    (void)runPlan(*plan.value, options);
    return testing::internal::GetCapturedStdout();
}

std::string
goldenPath()
{
    return std::string(QUETZAL_SCENARIO_DIR) + "/golden/tournament." +
        std::to_string(kEvents) + ".txt";
}

TEST(LeagueGolden, TournamentMatchesCommittedLeagueTable)
{
    const std::string output = runTournament(1);
    ASSERT_FALSE(output.empty());
    // The league table is the scenario's only stdout output.
    EXPECT_NE(output.find("=== league: tournament ==="),
              std::string::npos);
    EXPECT_NE(output.find("-- fleet (6 cells) --"), std::string::npos);

    const std::string path = goldenPath();
    if (std::getenv("QUETZAL_REGEN_GOLDEN") != nullptr) {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out.is_open()) << path;
        out << output;
        return;
    }

    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.is_open())
        << path << " missing — regenerate with QUETZAL_REGEN_GOLDEN=1";
    std::ostringstream expected;
    expected << in.rdbuf();
    EXPECT_EQ(output, expected.str())
        << "league table drifted from the committed reference";
}

TEST(LeagueGolden, TournamentIsIdenticalAcrossJobCounts)
{
    const std::string serial = runTournament(1);
    const std::string parallel = runTournament(4);
    ASSERT_FALSE(serial.empty());
    EXPECT_EQ(serial, parallel);
}

} // namespace
} // namespace scenario
} // namespace quetzal
