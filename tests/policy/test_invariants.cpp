/**
 * @file
 * Policy-invariant property suite. Two halves:
 *
 *  1. Every registered policy survives the verify.hpp walk with zero
 *     violations and produces bit-identical decision streams from
 *     fresh instances (decisions are a pure function of observable
 *     state).
 *  2. The harness itself is demonstrated sharp: deliberately broken
 *     policies — scheduling an in-flight slot, overclaiming the
 *     energy bound, mismatching the slot's job, malformed option
 *     vectors, negative predictions, hidden mutable state — are each
 *     flagged with the expected violation class.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "policy/registry.hpp"
#include "policy/verify.hpp"
#include "policy/zoo.hpp"

namespace quetzal {
namespace policy {
namespace {

std::string
joined(const std::vector<std::string> &violations)
{
    std::string out;
    for (const std::string &v : violations)
        out += v + "\n";
    return out;
}

bool
anyContains(const std::vector<std::string> &violations,
            const std::string &needle)
{
    for (const std::string &v : violations) {
        if (v.find(needle) != std::string::npos)
            return true;
    }
    return false;
}

TEST(PolicyInvariants, EveryRegisteredPolicyPassesTheWalk)
{
    for (const std::string &name : registeredPolicyNames()) {
        SCOPED_TRACE(name);
        const auto policy = makePolicy(name);
        const VerifyReport report = verifyPolicy(*policy);
        EXPECT_TRUE(report.ok()) << joined(report.violations);
        // A walk that never exercised the policy proves nothing.
        EXPECT_GT(report.decisions, 50u);
    }
}

TEST(PolicyInvariants, EveryRegisteredPolicyPassesAlternateWalks)
{
    VerifyOptions options;
    options.seed = 99;
    options.rounds = 200;
    options.bufferCapacity = 3;  // tighter buffer, more overflows
    options.serviceRounds = 4;   // longer in-flight windows
    for (const std::string &name : registeredPolicyNames()) {
        SCOPED_TRACE(name);
        const auto policy = makePolicy(name);
        const VerifyReport report = verifyPolicy(*policy, options);
        EXPECT_TRUE(report.ok()) << joined(report.violations);
    }
}

TEST(PolicyInvariants, DecisionsArePureFunctionsOfObservableState)
{
    for (const std::string &name : registeredPolicyNames()) {
        SCOPED_TRACE(name);
        // Two fresh instances replay the identical walk: any hidden
        // state not derived from observations diverges the streams.
        const auto first = makePolicy(name);
        const auto second = makePolicy(name);
        const std::vector<std::string> a = decisionStream(*first);
        const std::vector<std::string> b = decisionStream(*second);
        ASSERT_FALSE(a.empty());
        EXPECT_EQ(a, b);
    }
}

TEST(PolicyInvariants, DecisionStreamsRespondToTheSeed)
{
    // Sanity check on the harness: different walks must actually
    // differ, or the purity test above would be vacuous.
    VerifyOptions other;
    other.seed = 2;
    const auto a = makePolicy("sjf-ibo");
    const auto b = makePolicy("sjf-ibo");
    EXPECT_NE(decisionStream(*a), decisionStream(*b, other));
}

// --- Deliberately broken policies: the harness must flag each. -----

/** Schedules the FIFO head even while it is in flight. */
class DoubleReleasePolicy : public SchedulingPolicy
{
  public:
    std::string name() const override { return "broken-in-flight"; }

    std::optional<core::SchedulerDecision>
    rank(const PolicyContext &ctx) override
    {
        std::optional<core::SchedulerDecision> decision;
        ctx.buffer.forEachFifo([&](queueing::SlotId slot,
                                   const queueing::InputRecord &rec) {
            if (decision)
                return;
            core::SchedulerDecision d;
            d.jobId = rec.jobId;
            d.slot = slot;
            decision = d;
        });
        return decision;
    }

    core::AdaptationDecision
    admit(const PolicyContext &, const core::Job &) override
    {
        return {};
    }
};

/** Declares an energy bound above the observed stored energy. */
class OverclaimPolicy : public GreedyFcfsPolicy
{
  public:
    std::string name() const override { return "broken-overclaim"; }

    std::optional<core::SchedulerDecision>
    rank(const PolicyContext &ctx) override
    {
        auto decision = GreedyFcfsPolicy::rank(ctx);
        if (decision)
            decision->energyBoundJoules =
                ctx.runtime.storedEnergy * 2.0 + 1.0;
        return decision;
    }
};

/** Names a job other than the one in the chosen slot's record. */
class WrongJobPolicy : public GreedyFcfsPolicy
{
  public:
    std::string name() const override { return "broken-wrong-job"; }

    std::optional<core::SchedulerDecision>
    rank(const PolicyContext &ctx) override
    {
        auto decision = GreedyFcfsPolicy::rank(ctx);
        if (decision)
            decision->jobId =
                (decision->jobId + 1) % ctx.system.jobCount();
        return decision;
    }
};

/** Admits with an out-of-range degradation option index. */
class BadOptionPolicy : public GreedyFcfsPolicy
{
  public:
    std::string name() const override { return "broken-option"; }

    core::AdaptationDecision
    admit(const PolicyContext &, const core::Job &job) override
    {
        core::AdaptationDecision decision;
        decision.optionPerTask.assign(job.tasks.size(), 99);
        return decision;
    }
};

/** Predicts a negative service time. */
class NegativePredictionPolicy : public GreedyFcfsPolicy
{
  public:
    std::string name() const override { return "broken-negative"; }

    core::AdaptationDecision
    admit(const PolicyContext &, const core::Job &) override
    {
        core::AdaptationDecision decision;
        decision.predictedServiceSeconds = -1.0;
        return decision;
    }
};

/** Decisions depend on a process-global counter, not observations. */
class HiddenStatePolicy : public GreedyFcfsPolicy
{
  public:
    std::string name() const override { return "broken-hidden"; }

    std::optional<core::SchedulerDecision>
    rank(const PolicyContext &ctx) override
    {
        // Modulus chosen not to divide the walk length, so the
        // counter's phase differs between two consecutive walks.
        if (++counter() % 7 == 0)
            return std::nullopt;
        return GreedyFcfsPolicy::rank(ctx);
    }

  private:
    static int &counter()
    {
        static int value = 0;
        return value;
    }
};

TEST(PolicyInvariants, HarnessFlagsInFlightScheduling)
{
    DoubleReleasePolicy broken;
    const VerifyReport report = verifyPolicy(broken);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(anyContains(report.violations, "in-flight slot"))
        << joined(report.violations);
}

TEST(PolicyInvariants, HarnessFlagsEnergyBoundOverclaim)
{
    OverclaimPolicy broken;
    const VerifyReport report = verifyPolicy(broken);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(anyContains(report.violations, "energy bound"))
        << joined(report.violations);
}

TEST(PolicyInvariants, HarnessFlagsJobSlotMismatch)
{
    WrongJobPolicy broken;
    const VerifyReport report = verifyPolicy(broken);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(anyContains(report.violations, "does not match"))
        << joined(report.violations);
}

TEST(PolicyInvariants, HarnessFlagsOutOfRangeOptions)
{
    BadOptionPolicy broken;
    const VerifyReport report = verifyPolicy(broken);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(anyContains(report.violations, "option index"))
        << joined(report.violations);
}

TEST(PolicyInvariants, HarnessFlagsNegativePredictions)
{
    NegativePredictionPolicy broken;
    const VerifyReport report = verifyPolicy(broken);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(
        anyContains(report.violations, "negative service prediction"))
        << joined(report.violations);
}

TEST(PolicyInvariants, PurityCheckCatchesHiddenState)
{
    // The counter is shared across instances, so the second stream
    // starts from a different parity than the first: exactly the
    // divergence the registered-policy purity test would report.
    HiddenStatePolicy first;
    HiddenStatePolicy second;
    EXPECT_NE(decisionStream(first), decisionStream(second));
}

} // namespace
} // namespace policy
} // namespace quetzal
