/**
 * @file
 * quetzal-btrace-v1 unit tests (DESIGN.md section 16): bit-exact
 * round-trips through the encoder and the streaming cursor, chunk
 * sealing determinism (streaming sink == batch writer, byte for
 * byte), bounded-memory backpressure, and the corruption paths —
 * truncation, CRC mismatch, and schema major-version skew all die
 * with a diagnostic instead of decoding garbage.
 *
 * The format-equivalence test at the bottom is the satellite
 * contract behind tools/trace_stat: a run serialized as JSONL and as
 * btrace must stream back the *same record sequence* through
 * openTraceCursor, so every statistic computed over one format is
 * computed over the other.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/btrace.hpp"
#include "obs/event.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/stream_sink.hpp"
#include "obs/trace_cursor.hpp"
#include "obs/trace_io.hpp"
#include "obs/trace_sink.hpp"
#include "sim/experiment.hpp"

namespace quetzal {
namespace obs {
namespace {

/** One event exercising every field shape the mask can carry. */
Event
fullEvent(Tick tick)
{
    Event event;
    event.kind = EventKind::ScheduleDecision;
    event.tick = tick;
    event.id = 0xdeadbeefcafeull;
    event.value = -42;
    event.extra = 1234567890123ll;
    event.a = -0.3250000000000001;
    event.b = 1e-17;
    event.flags = kFlagInteresting | kFlagDegraded;
    event.options = 0x21;
    return event;
}

/** A stream with sparse masks, zero fields and tick plateaus. */
std::vector<Event>
mixedEvents()
{
    std::vector<Event> events;
    Event zero; // everything default: the minimal two-byte record
    zero.tick = 0;
    events.push_back(zero);
    events.push_back(fullEvent(0)); // same tick: zero delta
    Event sparse;
    sparse.kind = EventKind::BufferOccupancy;
    sparse.tick = 999983;
    sparse.value = 3;
    sparse.extra = 8;
    events.push_back(sparse);
    Event negative;
    negative.kind = EventKind::RunEnd;
    negative.tick = 7; // large negative delta within the chunk
    negative.a = -1.5;
    events.push_back(negative);
    return events;
}

std::string
writeBtrace(const std::vector<std::vector<Event>> &runs)
{
    std::ostringstream out;
    BtraceWriter writer(out);
    for (std::size_t i = 0; i < runs.size(); ++i)
        writer.writeRun(runs[i], i);
    writer.finish();
    return out.str();
}

std::vector<TraceRecord>
readBtrace(const std::string &bytes)
{
    std::istringstream in(bytes);
    BtraceTraceCursor cursor(in, "<test>");
    std::vector<TraceRecord> records;
    TraceRecord record;
    while (cursor.next(record))
        records.push_back(record);
    return records;
}

void
expectSameEvent(const Event &want, const Event &got)
{
    EXPECT_EQ(want.kind, got.kind);
    EXPECT_EQ(want.tick, got.tick);
    EXPECT_EQ(want.id, got.id);
    EXPECT_EQ(want.value, got.value);
    EXPECT_EQ(want.extra, got.extra);
    // Bit-exact, not approximately-equal: doubles travel as raw
    // IEEE-754 words.
    EXPECT_EQ(want.a, got.a);
    EXPECT_EQ(want.b, got.b);
    EXPECT_EQ(want.flags, got.flags);
    EXPECT_EQ(want.options, got.options);
}

TEST(Btrace, RoundTripsEveryFieldShape)
{
    const std::vector<Event> events = mixedEvents();
    const std::string bytes = writeBtrace({events});
    EXPECT_TRUE(looksLikeBtrace(bytes));

    const std::vector<TraceRecord> records = readBtrace(bytes);
    ASSERT_EQ(records.size(), events.size());
    for (std::size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(records[i].run, 0u);
        expectSameEvent(events[i], records[i].event);
    }
}

TEST(Btrace, MultiRunFilesKeepRunIndicesAndOrder)
{
    std::vector<std::vector<Event>> runs(3);
    for (std::size_t run = 0; run < runs.size(); ++run) {
        for (Tick t = 0; t < 5; ++t) {
            Event event = fullEvent(t * 1000);
            event.id = run * 100 + static_cast<std::uint64_t>(t);
            runs[run].push_back(event);
        }
    }
    runs[1].clear(); // an empty run in the middle emits no chunk

    const std::vector<TraceRecord> records =
        readBtrace(writeBtrace(runs));
    ASSERT_EQ(records.size(), 10u);
    for (std::size_t i = 0; i < records.size(); ++i) {
        const std::uint64_t run = i < 5 ? 0 : 2;
        EXPECT_EQ(records[i].run, run);
        EXPECT_EQ(records[i].event.id,
                  run * 100 + static_cast<std::uint64_t>(i % 5));
    }
}

TEST(Btrace, ZeroEventFileAndZeroEventRunDecodeCleanly)
{
    // No runs at all: header + footer only.
    const std::string empty = writeBtrace({});
    EXPECT_EQ(empty.size(), kBtraceHeaderSize + 8);
    EXPECT_TRUE(readBtrace(empty).empty());

    // One run with no events.
    EXPECT_TRUE(readBtrace(writeBtrace({{}})).empty());
}

TEST(Btrace, LongStreamsSealMultipleChunks)
{
    // Enough full-mask records to cross the 64 KiB chunk target
    // several times; every tick and payload must survive resealing.
    std::vector<Event> events;
    for (Tick t = 0; t < 6000; ++t)
        events.push_back(fullEvent(t * 37));

    const std::string bytes = writeBtrace({events});
    const std::vector<TraceRecord> records = readBtrace(bytes);
    ASSERT_EQ(records.size(), events.size());
    for (std::size_t i = 0; i < events.size(); i += 977)
        expectSameEvent(events[i], records[i].event);
    expectSameEvent(events.back(), records.back().event);
}

TEST(Btrace, StreamingSinkIsByteIdenticalToBatchWriter)
{
    std::vector<Event> events;
    for (Tick t = 0; t < 6000; ++t)
        events.push_back(fullEvent(t * 41));

    const std::string batch = writeBtrace({events});

    std::ostringstream streamed;
    {
        StreamingBtraceSink sink(streamed, 0);
        for (const Event &event : events)
            sink.record(event);
        sink.finish();
        EXPECT_EQ(sink.eventCount(), events.size());
    }
    EXPECT_EQ(batch, streamed.str());
}

/**
 * Output buffer that stalls the flusher's first write until the
 * producer has been observed blocking on the budget. This makes the
 * backpressure path deterministic instead of a race the producer can
 * lose on slow (sanitizer/coverage) builds: with the first write
 * parked, the second sealed chunk is guaranteed to find the first
 * one still queued and take the wait branch — which in turn releases
 * this gate (a watchdog deadline fails the test instead of hanging
 * it if the wait never happens).
 */
class GatedBuf final : public std::stringbuf
{
  public:
    std::atomic<const StreamingBtraceSink *> sink{nullptr};

  protected:
    std::streamsize
    xsputn(const char *data, std::streamsize size) override
    {
        const auto deadline = std::chrono::steady_clock::now() +
            std::chrono::seconds(30);
        const StreamingBtraceSink *observed = nullptr;
        while ((observed = sink.load(std::memory_order_acquire)) ==
                   nullptr ||
               observed->backpressureWaits() == 0) {
            if (std::chrono::steady_clock::now() > deadline)
                break;
            std::this_thread::yield();
        }
        return std::stringbuf::xsputn(data, size);
    }
};

TEST(Btrace, StreamingSinkHonorsTheInFlightBudget)
{
    // A budget far below one sealed chunk forces the producer to wait
    // for the flusher; the queue must still never hold more than one
    // block beyond the budget, and the file must come out identical.
    std::vector<Event> events;
    for (Tick t = 0; t < 6000; ++t)
        events.push_back(fullEvent(t * 43));

    StreamingBtraceSink::Options options;
    options.maxInFlightBytes = 1024;

    GatedBuf gated;
    std::ostream streamed(&gated);
    StreamingBtraceSink sink(streamed, 0, options);
    gated.sink.store(&sink, std::memory_order_release);
    for (const Event &event : events)
        sink.record(event);
    sink.finish();

    EXPECT_EQ(writeBtrace({events}), gated.str());
    EXPECT_GT(sink.backpressureWaits(), 0u);
    // Bounded memory: budget plus at most one oversized block (a
    // sealed chunk body + framing).
    EXPECT_LE(sink.peakQueuedBytes(),
              options.maxInFlightBytes + kBtraceChunkTarget + 512);
}

// --- Corruption paths --------------------------------------------------

using BtraceDeathTest = ::testing::Test;

TEST(BtraceDeathTest, TruncatedFileIsFatal)
{
    const std::string bytes = writeBtrace({mixedEvents()});
    // Cut inside the last chunk's payload, removing the footer too.
    const std::string truncated = bytes.substr(0, bytes.size() - 12);
    EXPECT_DEATH(readBtrace(truncated), "truncated");
}

TEST(BtraceDeathTest, MissingFooterIsFatal)
{
    const std::string bytes = writeBtrace({mixedEvents()});
    // Remove exactly the 8-byte footer: chunks are intact, but the
    // end of stream is not clean.
    const std::string headless = bytes.substr(0, bytes.size() - 8);
    EXPECT_DEATH(readBtrace(headless), "truncated");
}

TEST(BtraceDeathTest, CorruptChunkFailsTheCrc)
{
    std::string bytes = writeBtrace({mixedEvents()});
    // Flip one payload byte past the first chunk's 8-byte frame.
    bytes[kBtraceHeaderSize + 8 + 2] ^= 0x01;
    EXPECT_DEATH(readBtrace(bytes), "CRC");
}

TEST(BtraceDeathTest, FutureSchemaMajorIsRejected)
{
    std::string bytes = writeBtrace({mixedEvents()});
    bytes[4] = static_cast<char>(kBtraceMajor + 1);
    EXPECT_DEATH(readBtrace(bytes), "schema");
}

TEST(Btrace, DecodePayloadReportsMalformedInputWithoutDying)
{
    BtraceChunk chunk;
    std::string error;
    // Varint runs off the end of the payload.
    EXPECT_FALSE(decodeBtracePayload(std::string("\xff\xff", 2), chunk,
                                     error));
    EXPECT_FALSE(error.empty());

    // Record count promises more records than the payload holds.
    std::string claims;
    claims.push_back('\x00'); // run 0
    claims.push_back('\x05'); // 5 events, then nothing
    error.clear();
    EXPECT_FALSE(decodeBtracePayload(claims, chunk, error));
    EXPECT_FALSE(error.empty());
}

// --- Format equivalence (the trace_stat satellite) ---------------------

/** Serialize one traced run both ways; stream both back; compare. */
TEST(Btrace, JsonlAndBtraceCursorsYieldTheSameRecords)
{
    sim::ExperimentConfig config;
    config.environment = trace::EnvironmentPreset::Msp430Short;
    config.eventCount = 3;
    config.seed = 17;
    config.sim.bufferCapacity = 6;
    config.sim.drainTicks = 10 * kTicksPerSecond;
    config.obsLevel = ObsLevel::Full;
    VectorSink sink;
    config.obsSink = &sink;
    (void)sim::runExperiment(config);
    ASSERT_FALSE(sink.events().empty());

    std::ostringstream jsonl;
    writeJsonlHeader(jsonl);
    writeJsonl(jsonl, sink.events(), 0);
    const std::string binary = writeBtrace({sink.events()});

    std::istringstream jsonlIn(jsonl.str());
    std::istringstream binaryIn(binary);
    const auto jsonlCursor = openTraceCursor(jsonlIn, "<jsonl>");
    const auto binaryCursor = openTraceCursor(binaryIn, "<btrace>");
    ASSERT_EQ(jsonlCursor->format(), TraceFormat::Jsonl);
    ASSERT_EQ(binaryCursor->format(), TraceFormat::Btrace);

    TraceRecord fromJsonl;
    TraceRecord fromBinary;
    std::size_t count = 0;
    while (true) {
        const bool moreJsonl = jsonlCursor->next(fromJsonl);
        const bool moreBinary = binaryCursor->next(fromBinary);
        ASSERT_EQ(moreJsonl, moreBinary)
            << "formats disagree on stream length after " << count
            << " records";
        if (!moreJsonl)
            break;
        EXPECT_EQ(fromJsonl.run, fromBinary.run);
        expectSameEvent(fromJsonl.event, fromBinary.event);
        ++count;
    }
    EXPECT_EQ(count, sink.events().size());
}

/**
 * The end-to-end form of the same contract: replay both
 * serializations through MetricsRegistry — exactly what trace_stat
 * does — and require the printed summaries to match to the byte.
 */
TEST(Btrace, StatSummariesMatchAcrossFormats)
{
    sim::ExperimentConfig config;
    config.environment = trace::EnvironmentPreset::Msp430Short;
    config.eventCount = 3;
    config.seed = 17;
    config.sim.bufferCapacity = 6;
    config.sim.drainTicks = 10 * kTicksPerSecond;
    config.obsLevel = ObsLevel::Full;
    VectorSink sink;
    config.obsSink = &sink;
    (void)sim::runExperiment(config);
    ASSERT_FALSE(sink.events().empty());

    std::ostringstream jsonl;
    writeJsonlHeader(jsonl);
    writeJsonl(jsonl, sink.events(), 0);
    const std::string binary = writeBtrace({sink.events()});

    const auto summarize = [](std::istream &in, const char *label) {
        const auto cursor = openTraceCursor(in, label);
        MetricsRegistry registry;
        TraceRecord record;
        while (cursor->next(record))
            registry.record(record.event);
        std::ostringstream out;
        registry.printSummary(out, "run 0");
        return out.str();
    };
    std::istringstream jsonlIn(jsonl.str());
    std::istringstream binaryIn(binary);
    const std::string fromJsonl = summarize(jsonlIn, "<jsonl>");
    const std::string fromBinary = summarize(binaryIn, "<btrace>");
    ASSERT_FALSE(fromJsonl.empty());
    EXPECT_EQ(fromJsonl, fromBinary);
}

} // namespace
} // namespace obs
} // namespace quetzal
