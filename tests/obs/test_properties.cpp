/**
 * @file
 * Property-based tests over full experiment runs traced at
 * ObsLevel::Full: the event stream must reconstruct the simulator's
 * live metrics exactly, obey the app's conservation laws, pair every
 * scheduling decision with exactly one observed IBO outcome, and be
 * byte-deterministic across reruns.
 */

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <vector>

#include "obs/metrics_registry.hpp"
#include "obs/trace_io.hpp"
#include "obs/trace_sink.hpp"
#include "sim/experiment.hpp"
#include "util/random.hpp"

namespace quetzal {
namespace obs {
namespace {

struct TracedRun
{
    sim::Metrics metrics;
    std::vector<Event> events;
};

TracedRun
runTraced(sim::ExperimentConfig config)
{
    VectorSink sink;
    config.obsLevel = ObsLevel::Full;
    config.obsSink = &sink;
    TracedRun run;
    run.metrics = sim::runExperiment(config);
    run.events = sink.events();
    return run;
}

/** A small, varied experiment; runs in a few milliseconds. */
sim::ExperimentConfig
randomConfig(util::Rng &rng)
{
    static const sim::ControllerKind kControllers[] = {
        sim::ControllerKind::Quetzal,
        sim::ControllerKind::QuetzalFcfs,
        sim::ControllerKind::NoAdapt,
        sim::ControllerKind::AlwaysDegrade,
        sim::ControllerKind::CatNap,
        sim::ControllerKind::Zgo,
    };
    sim::ExperimentConfig config;
    config.controller = kControllers[rng.uniformInt(0, 5)];
    config.environment = rng.bernoulli(0.5)
        ? trace::EnvironmentPreset::Crowded
        : trace::EnvironmentPreset::LessCrowded;
    config.eventCount = static_cast<std::size_t>(rng.uniformInt(20, 60));
    config.seed = static_cast<std::uint64_t>(rng.uniformInt(1, 100000));
    config.sim.bufferCapacity = static_cast<std::size_t>(rng.uniformInt(4, 12));
    config.sim.drainTicks = 60 * kTicksPerSecond;
    if (rng.bernoulli(0.3))
        config.sim.executionJitterSigma = 0.2;
    if (rng.bernoulli(0.3))
        config.checkpointPolicy = app::CheckpointPolicy::Periodic;
    return config;
}

MetricsRegistry
replay(const std::vector<Event> &events)
{
    MetricsRegistry registry;
    for (const Event &event : events)
        registry.record(event);
    return registry;
}

/** The replayed counters must match the live metrics field by field. */
void
expectCountersMatchMetrics(const MetricsRegistry &registry,
                           const sim::Metrics &metrics)
{
    const ReplayCounters &c = registry.counters();
    EXPECT_EQ(c.captures, metrics.captures);
    EXPECT_EQ(c.interestingCaptured, metrics.interestingCaptured);
    EXPECT_EQ(c.uninterestingCaptured, metrics.uninterestingCaptured);
    EXPECT_EQ(c.storedInputs, metrics.storedInputs);
    EXPECT_EQ(c.iboDropsInteresting, metrics.iboDropsInteresting);
    EXPECT_EQ(c.iboDropsUninteresting, metrics.iboDropsUninteresting);
    EXPECT_EQ(c.fnDiscards, metrics.fnDiscards);
    EXPECT_EQ(c.fpPositives, metrics.fpPositives);
    EXPECT_EQ(c.txInterestingHq, metrics.txInterestingHq);
    EXPECT_EQ(c.txInterestingLq, metrics.txInterestingLq);
    EXPECT_EQ(c.txUninterestingHq, metrics.txUninterestingHq);
    EXPECT_EQ(c.txUninterestingLq, metrics.txUninterestingLq);
    EXPECT_EQ(c.jobsCompleted, metrics.jobsCompleted);
    EXPECT_EQ(c.degradedJobs, metrics.degradedJobs);
    EXPECT_EQ(c.iboPredictions, metrics.iboPredictions);
    EXPECT_EQ(c.powerFailures, metrics.powerFailures);
    EXPECT_EQ(c.checkpointSaves, metrics.checkpointSaves);
    EXPECT_EQ(c.rechargeTicks, metrics.rechargeTicks);
    EXPECT_EQ(c.eventsTotal, metrics.eventsTotal);
    EXPECT_EQ(c.eventsInteresting, metrics.eventsInteresting);
    EXPECT_EQ(c.interestingInputsNominal,
              metrics.interestingInputsNominal);
    EXPECT_EQ(c.unprocessedInteresting, metrics.unprocessedInteresting);
    EXPECT_EQ(c.simulatedTicks, metrics.simulatedTicks);

    // The streaming distributions see the same samples the live
    // RunningStats saw — same count, same exact doubles in the same
    // order.
    EXPECT_EQ(registry.serviceStats().count(),
              metrics.jobServiceSeconds.count());
    EXPECT_EQ(registry.serviceStats().mean(),
              metrics.jobServiceSeconds.mean());
    EXPECT_EQ(registry.predictionErrorStats().count(),
              metrics.predictionErrorSeconds.count());
    EXPECT_EQ(registry.predictionErrorStats().mean(),
              metrics.predictionErrorSeconds.mean());
}

/** Structural laws any Full-level stream must obey. */
void
expectStreamLaws(const std::vector<Event> &events)
{
    ASSERT_FALSE(events.empty());

    // Ticks never go backwards (simulated clock, not wall clock).
    Tick previous = 0;
    for (const Event &event : events) {
        EXPECT_GE(event.tick, previous);
        previous = event.tick;
    }

    // Exactly one RunEnd, and it is the final event.
    std::uint64_t runEnds = 0;
    for (const Event &event : events)
        if (event.kind == EventKind::RunEnd)
            ++runEnds;
    EXPECT_EQ(runEnds, 1u);
    EXPECT_EQ(events.back().kind, EventKind::RunEnd);

    // Every scheduling decision observes exactly one IBO outcome,
    // matched by decision sequence number — including decisions cut
    // off by the horizon (flagged unfinished).
    std::map<std::uint64_t, int> decisions;
    std::map<std::uint64_t, int> outcomes;
    std::uint64_t unfinished = 0;
    std::uint64_t jobsDone = 0;
    for (const Event &event : events) {
        if (event.kind == EventKind::ScheduleDecision)
            ++decisions[event.id];
        else if (event.kind == EventKind::IboOutcome) {
            ++outcomes[event.id];
            if (event.flags & kFlagUnfinished)
                ++unfinished;
        } else if (event.kind == EventKind::JobComplete) {
            ++jobsDone;
        }
    }
    EXPECT_EQ(decisions.size(), outcomes.size());
    for (const auto &entry : decisions) {
        EXPECT_EQ(entry.second, 1) << "decision seq " << entry.first;
        const auto it = outcomes.find(entry.first);
        ASSERT_NE(it, outcomes.end()) << "decision seq " << entry.first
                                      << " has no outcome";
        EXPECT_EQ(it->second, 1) << "decision seq " << entry.first;
    }
    // A decision either completes its job or is cut by the horizon.
    EXPECT_EQ(decisions.size(), jobsDone + unfinished);
    EXPECT_LE(unfinished, 1u);
}

TEST(ObsProperties, RandomizedRunsReconstructAndObeyLaws)
{
    util::Rng rng(99);
    for (int trial = 0; trial < 8; ++trial) {
        SCOPED_TRACE(trial);
        const sim::ExperimentConfig config = randomConfig(rng);
        const TracedRun run = runTraced(config);
        const MetricsRegistry registry = replay(run.events);

        expectCountersMatchMetrics(registry, run.metrics);
        expectStreamLaws(run.events);

        const ReplayCounters &c = registry.counters();

        // Histogram sample counts match event counts.
        EXPECT_EQ(registry.eventCount(EventKind::Capture), c.captures);
        EXPECT_EQ(registry.serviceStats().count(),
                  registry.eventCount(EventKind::JobComplete));
        EXPECT_EQ(registry.queueDepthStats().count(),
                  registry.eventCount(EventKind::BufferOccupancy));
        EXPECT_EQ(registry.eventCount(EventKind::BufferOccupancy),
                  c.captures);
        EXPECT_EQ(registry.predictionErrorStats().count(),
                  registry.eventCount(EventKind::PidUpdate));
        EXPECT_EQ(registry.pidOutputStats().count(),
                  registry.eventCount(EventKind::PidUpdate));

        // Conservation at the buffer: every "different" capture is
        // either stored or dropped.
        EXPECT_EQ(registry.eventCount(EventKind::InputStored) +
                      registry.eventCount(EventKind::InputDropped),
                  c.interestingCaptured + c.uninterestingCaptured);
        EXPECT_EQ(registry.eventCount(EventKind::InputStored),
                  c.storedInputs);

        // Conservation of interesting inputs end to end: captured ==
        // dropped + judged-negative + transmitted + left in buffer.
        EXPECT_EQ(c.interestingCaptured,
                  c.iboDropsInteresting + c.fnDiscards +
                      c.txInterestingHq + c.txInterestingLq +
                      c.unprocessedInteresting);

        // Degradation counts sum to the degraded-job counter.
        std::uint64_t degradedSum = 0;
        for (const auto &entry : registry.degradationCounts())
            degradedSum += entry.second;
        EXPECT_EQ(degradedSum, c.degradedJobs);

        // The IBO confusion matrix has one sample per decision.
        EXPECT_EQ(registry.iboAccuracy().total(),
                  registry.eventCount(EventKind::ScheduleDecision));

        EXPECT_EQ(registry.eventCount(), run.events.size());
        EXPECT_EQ(registry.lastTick(), run.events.back().tick);
    }
}

TEST(ObsProperties, TracingDoesNotPerturbResults)
{
    util::Rng rng(123);
    for (int trial = 0; trial < 4; ++trial) {
        SCOPED_TRACE(trial);
        const sim::ExperimentConfig config = randomConfig(rng);
        const sim::Metrics untraced = sim::runExperiment(config);
        const TracedRun traced = runTraced(config);
        EXPECT_EQ(untraced.jobsCompleted, traced.metrics.jobsCompleted);
        EXPECT_EQ(untraced.storedInputs, traced.metrics.storedInputs);
        EXPECT_EQ(untraced.degradedJobs, traced.metrics.degradedJobs);
        EXPECT_EQ(untraced.rechargeTicks, traced.metrics.rechargeTicks);
        EXPECT_EQ(untraced.simulatedTicks,
                  traced.metrics.simulatedTicks);
        EXPECT_EQ(untraced.jobServiceSeconds.mean(),
                  traced.metrics.jobServiceSeconds.mean());
    }
}

TEST(ObsProperties, RerunsAreByteIdentical)
{
    util::Rng rng(7);
    const sim::ExperimentConfig config = randomConfig(rng);
    const TracedRun first = runTraced(config);
    const TracedRun second = runTraced(config);

    std::ostringstream a;
    std::ostringstream b;
    writeJsonl(a, first.events, 0);
    writeJsonl(b, second.events, 0);
    EXPECT_EQ(a.str(), b.str());
    EXPECT_FALSE(a.str().empty());
}

TEST(ObsProperties, LevelsAreMonotoneSubsets)
{
    // A lower level's stream is exactly the higher level's stream
    // with the extra kinds filtered out — gating must not change
    // what is recorded, only how much.
    util::Rng rng(31);
    const sim::ExperimentConfig base = randomConfig(rng);

    auto runAt = [&](ObsLevel level) {
        VectorSink sink;
        sim::ExperimentConfig config = base;
        config.obsLevel = level;
        config.obsSink = &sink;
        (void)sim::runExperiment(config);
        return sink.events();
    };

    const std::vector<Event> counters = runAt(ObsLevel::Counters);
    const std::vector<Event> decisions = runAt(ObsLevel::Decisions);
    const std::vector<Event> full = runAt(ObsLevel::Full);

    auto filterTo = [](const std::vector<Event> &events, ObsLevel level) {
        std::vector<Event> kept;
        for (const Event &event : events)
            if (static_cast<int>(minLevel(event.kind)) <=
                static_cast<int>(level))
                kept.push_back(event);
        return kept;
    };

    auto sameStream = [](const std::vector<Event> &a,
                         const std::vector<Event> &b) {
        std::ostringstream sa;
        std::ostringstream sb;
        writeJsonl(sa, a, 0);
        writeJsonl(sb, b, 0);
        return sa.str() == sb.str();
    };

    EXPECT_TRUE(sameStream(counters,
                           filterTo(full, ObsLevel::Counters)));
    EXPECT_TRUE(sameStream(decisions,
                           filterTo(full, ObsLevel::Decisions)));
    EXPECT_LT(counters.size(), decisions.size());
    EXPECT_LT(decisions.size(), full.size());
}

} // namespace
} // namespace obs
} // namespace quetzal
