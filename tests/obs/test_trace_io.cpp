/**
 * @file
 * Serialization tests: JSONL round-trips exactly (randomized events,
 * every kind, extreme values), malformed input dies cleanly, and the
 * Chrome trace_event exporter produces structurally valid JSON even
 * around empty runs.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>

#include "obs/trace_io.hpp"
#include "util/random.hpp"

namespace quetzal {
namespace obs {
namespace {

/** Which Event members a kind's schema serializes. */
struct KindShape
{
    bool id, value, extra, a, b, options;
    std::uint32_t flagMask;
};

/** Mirror of the doc table in event.hpp — divergence between this
 *  and the writer/reader schema fails the round-trip below. */
KindShape
shapeOf(EventKind kind)
{
    switch (kind) {
      case EventKind::Capture:
        return {true, false, false, false, false, false,
                kFlagDifferent | kFlagInteresting};
      case EventKind::InputStored:
      case EventKind::InputDropped:
        return {true, true, false, false, false, false,
                kFlagInteresting};
      case EventKind::ScheduleDecision:
        return {true, true, true, true, true, true,
                kFlagIboPredicted | kFlagDegraded};
      case EventKind::TaskService:
        return {true, true, true, true, true, false, 0};
      case EventKind::IboOutcome:
        return {true, true, false, false, false, false,
                kFlagIboPredicted | kFlagOverflowed | kFlagUnfinished};
      case EventKind::PidUpdate:
        return {true, false, false, true, true, false, 0};
      case EventKind::TaskComplete:
        return {true, true, true, true, false, false, 0};
      case EventKind::JobComplete:
        return {true, true, true, true, false, false,
                kFlagClassify | kFlagTransmit | kFlagPositive |
                    kFlagHighQuality | kFlagInteresting};
      case EventKind::PowerFailure:
        return {false, true, true, false, false, false, 0};
      case EventKind::RechargeInterval:
        return {false, true, false, false, false, false, 0};
      case EventKind::BufferOccupancy:
        return {false, true, true, false, false, false, 0};
      case EventKind::RunEnd:
        return {true, true, true, true, true, false, 0};
      case EventKind::FaultInjected:
        return {true, true, true, true, false, false, 0};
      case EventKind::FaultDetected:
        return {true, false, false, true, true, false, 0};
      case EventKind::FaultMitigated:
        return {true, true, false, true, true, false, 0};
      case EventKind::FleetRollup:
        return {true, true, true, true, true, false, 0};
    }
    return {};
}

/** A random double spanning many magnitudes, negatives included. */
double
randomDouble(util::Rng &rng)
{
    const double magnitude =
        rng.uniform(-1.0, 1.0) *
        std::pow(10.0, rng.uniform(-12.0, 12.0));
    return rng.bernoulli(0.1) ? 0.0 : magnitude;
}

/** A random event whose populated members match the kind's schema. */
Event
randomEventFor(EventKind kind, util::Rng &rng)
{
    const KindShape shape = shapeOf(kind);
    Event event;
    event.kind = kind;
    event.tick = rng.uniformInt(0, 10'000'000'000ll);
    if (shape.id)
        event.id = static_cast<std::uint64_t>(
            rng.uniformInt(0, 1'000'000'000ll));
    if (shape.value)
        event.value = rng.uniformInt(-1'000'000, 1'000'000'000ll);
    if (shape.extra)
        event.extra = rng.uniformInt(-1'000'000, 1'000'000'000ll);
    if (shape.a)
        event.a = randomDouble(rng);
    if (shape.b)
        event.b = randomDouble(rng);
    if (shape.options)
        event.options = static_cast<std::uint32_t>(
            rng.uniformInt(0, 0xffffffffll));
    std::uint32_t flags = 0;
    for (std::uint32_t bit = 1; bit != 0; bit <<= 1) {
        if ((shape.flagMask & bit) && rng.bernoulli(0.5))
            flags |= bit;
    }
    event.flags = flags;
    return event;
}

void
expectEventsEqual(const Event &a, const Event &b)
{
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.tick, b.tick);
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.value, b.value);
    EXPECT_EQ(a.extra, b.extra);
    EXPECT_EQ(a.a, b.a); // to_chars shortest form round-trips exactly
    EXPECT_EQ(a.b, b.b);
    EXPECT_EQ(a.flags, b.flags);
    EXPECT_EQ(a.options, b.options);
}

TEST(TraceJsonl, RoundTripsRandomizedEventsExactly)
{
    util::Rng rng(2024);
    std::vector<Event> events;
    for (int i = 0; i < 400; ++i) {
        const auto kind = static_cast<EventKind>(
            rng.uniformInt(0, static_cast<std::int64_t>(
                kEventKindCount - 1)));
        events.push_back(randomEventFor(kind, rng));
    }

    std::ostringstream out;
    writeJsonl(out, events, 3);
    std::istringstream in(out.str());
    const std::vector<TraceRecord> records = readJsonl(in);

    ASSERT_EQ(records.size(), events.size());
    for (std::size_t i = 0; i < events.size(); ++i) {
        SCOPED_TRACE(i);
        EXPECT_EQ(records[i].run, 3u);
        expectEventsEqual(records[i].event, events[i]);
    }
}

TEST(TraceJsonl, WriterOutputIsDeterministic)
{
    util::Rng rng(7);
    std::vector<Event> events;
    for (int i = 0; i < 50; ++i)
        events.push_back(randomEventFor(
            static_cast<EventKind>(i % kEventKindCount), rng));
    std::ostringstream a;
    std::ostringstream b;
    writeJsonl(a, events, 0);
    writeJsonl(b, events, 0);
    EXPECT_EQ(a.str(), b.str());
}

TEST(TraceJsonl, MultiRunStreamsKeepRunIndices)
{
    util::Rng rng(11);
    const std::vector<Event> runA = {
        randomEventFor(EventKind::Capture, rng)};
    const std::vector<Event> runB = {
        randomEventFor(EventKind::RunEnd, rng),
        randomEventFor(EventKind::JobComplete, rng)};

    std::ostringstream out;
    writeJsonl(out, runA, 0);
    writeJsonl(out, runB, 1);

    std::istringstream in(out.str());
    const auto records = readJsonl(in);
    ASSERT_EQ(records.size(), 3u);
    EXPECT_EQ(records[0].run, 0u);
    EXPECT_EQ(records[1].run, 1u);
    EXPECT_EQ(records[2].run, 1u);
}

TEST(TraceJsonl, SkipsBlankAndCommentLines)
{
    std::istringstream in(
        "# a comment\n"
        "\n"
        "{\"run\":0,\"t\":5,\"kind\":\"recharge\",\"ticks\":9}\n"
        "# trailing comment\n");
    const auto records = readJsonl(in);
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].event.kind, EventKind::RechargeInterval);
    EXPECT_EQ(records[0].event.tick, 5);
    EXPECT_EQ(records[0].event.value, 9);
}

TEST(TraceJsonl, SchemaHeaderRoundTrips)
{
    std::ostringstream out;
    writeJsonlHeader(out);
    EXPECT_EQ(out.str(), "# quetzal-trace schema_version=1.0\n");

    out << "{\"run\":2,\"t\":5,\"kind\":\"recharge\",\"ticks\":9}\n";
    std::istringstream in(out.str());
    const auto records = readJsonl(in);
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].run, 2u);
}

TEST(TraceJsonl, AcceptsSameMajorNewerMinor)
{
    // Minor bumps are backward compatible by definition.
    std::istringstream in(
        "# quetzal-trace schema_version=1.9\n"
        "{\"run\":0,\"t\":5,\"kind\":\"recharge\",\"ticks\":9}\n");
    const auto records = readJsonl(in);
    ASSERT_EQ(records.size(), 1u);
}

TEST(TraceJsonlDeathTest, RejectsUnknownSchemaMajor)
{
    auto parse = [](const char *text) {
        std::istringstream in(text);
        (void)readJsonl(in);
    };
    EXPECT_EXIT(parse("# quetzal-trace schema_version=2.0\n"),
                ::testing::ExitedWithCode(1),
                "unsupported trace schema_version 2.0");
    EXPECT_EXIT(parse("# quetzal-trace schema_version=0.9\n"),
                ::testing::ExitedWithCode(1),
                "unsupported trace schema_version 0.9");
    EXPECT_EXIT(parse("# quetzal-trace schema_version=squid\n"),
                ::testing::ExitedWithCode(1),
                "malformed schema_version header");
}

TEST(TraceJsonlDeathTest, MalformedInputIsFatal)
{
    auto parse = [](const char *text) {
        std::istringstream in(text);
        (void)readJsonl(in);
    };
    EXPECT_EXIT(parse("not json\n"), ::testing::ExitedWithCode(1),
                "trace line 1");
    EXPECT_EXIT(parse("{\"run\":0,\"t\":1}\n"),
                ::testing::ExitedWithCode(1), "missing kind");
    EXPECT_EXIT(parse("{\"run\":0,\"t\":1,\"kind\":\"warp\"}\n"),
                ::testing::ExitedWithCode(1), "unknown kind");
    EXPECT_EXIT(
        parse("{\"run\":0,\"t\":1,\"kind\":\"recharge\",\"watts\":3}\n"),
        ::testing::ExitedWithCode(1), "unknown key");
    EXPECT_EXIT(
        parse("{\"run\":0,\"t\":1,\"kind\":\"recharge\",\"ticks\":x}\n"),
        ::testing::ExitedWithCode(1), "bad integer");
    EXPECT_EXIT(
        parse("{\"run\":0,\"t\":1,\"kind\":\"capture\","
              "\"different\":maybe,\"interesting\":false}\n"),
        ::testing::ExitedWithCode(1), "bad bool");
}

TEST(TraceChrome, ProducesBalancedJsonArray)
{
    util::Rng rng(3);
    std::vector<Event> events;
    for (int i = 0; i < 30; ++i)
        events.push_back(randomEventFor(
            static_cast<EventKind>(i % kEventKindCount), rng));

    std::ostringstream out;
    writeChromeTraceHeader(out);
    bool first = true;
    first = writeChromeTrace(out, events, 0, first);
    first = writeChromeTrace(out, events, 1, first);
    writeChromeTraceFooter(out);
    EXPECT_FALSE(first);

    const std::string text = out.str();
    EXPECT_EQ(text.front(), '[');
    EXPECT_EQ(text.substr(text.size() - 3), "\n]\n");
    EXPECT_EQ(std::count(text.begin(), text.end(), '{'),
              std::count(text.begin(), text.end(), '}'));
    EXPECT_EQ(std::count(text.begin(), text.end(), '['), 1);
    EXPECT_EQ(std::count(text.begin(), text.end(), ']'), 1);
    // No empty elements: "," is always followed by a new object.
    EXPECT_EQ(text.find(",,"), std::string::npos);
    EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(text.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(text.find("\"ph\":\"i\""), std::string::npos);
}

TEST(TraceChrome, EmptyLeadingRunDoesNotBreakSeparators)
{
    // Regression: an empty first run must not leave the "first
    // element" flag set in a way that emits a second '[' or a
    // leading comma.
    util::Rng rng(5);
    const std::vector<Event> empty;
    const std::vector<Event> one = {
        randomEventFor(EventKind::Capture, rng)};

    std::ostringstream out;
    writeChromeTraceHeader(out);
    bool first = true;
    first = writeChromeTrace(out, empty, 0, first);
    EXPECT_TRUE(first);
    first = writeChromeTrace(out, one, 1, first);
    EXPECT_FALSE(first);
    first = writeChromeTrace(out, empty, 2, first);
    EXPECT_FALSE(first);
    writeChromeTraceFooter(out);

    const std::string text = out.str();
    EXPECT_EQ(std::count(text.begin(), text.end(), '['), 1);
    // The single element starts right after the header, no comma.
    EXPECT_EQ(text.rfind("[\n{", 0), 0u) << text.substr(0, 20);
}

} // namespace
} // namespace obs
} // namespace quetzal
