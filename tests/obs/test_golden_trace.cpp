/**
 * @file
 * Golden-trace regression tests: two small seeded scenarios are
 * serialized to JSONL and compared byte-for-byte against reference
 * files checked into tests/obs/golden/. Any change to the event
 * vocabulary, emission points, field values or serialization shows
 * up here as a diff — intentional changes regenerate the references
 * with:
 *
 *   QUETZAL_REGEN_GOLDEN=1 ./test_obs --gtest_filter='GoldenTrace.*'
 *
 * The same serialization is also asserted identical between
 * --jobs 1 and --jobs 4 executions of the ensemble, which is the
 * determinism contract the parallel runner must keep for traces (not
 * just for metrics).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/trace_io.hpp"
#include "obs/trace_sink.hpp"
#include "sim/experiment.hpp"
#include "sim/runner.hpp"

#ifndef QUETZAL_OBS_GOLDEN_DIR
#error "build must define QUETZAL_OBS_GOLDEN_DIR"
#endif

namespace quetzal {
namespace obs {
namespace {

struct GoldenScenario
{
    const char *name;
    sim::ControllerKind controller;
    trace::EnvironmentPreset environment;
    std::size_t runs;
};

const GoldenScenario kScenarios[] = {
    {"quetzal_short", sim::ControllerKind::Quetzal,
     trace::EnvironmentPreset::Msp430Short, 2},
    {"noadapt_short", sim::ControllerKind::NoAdapt,
     trace::EnvironmentPreset::Msp430Short, 2},
};

/** Deliberately tiny: the references live in git. */
sim::ExperimentConfig
scenarioConfig(const GoldenScenario &scenario, std::size_t runIndex)
{
    sim::ExperimentConfig config;
    config.controller = scenario.controller;
    config.environment = scenario.environment;
    config.eventCount = 3;
    config.seed = runIndex + 1;
    config.sim.bufferCapacity = 6;
    config.sim.drainTicks = 10 * kTicksPerSecond;
    return config;
}

/** Run the scenario's ensemble on `jobs` workers; serialize to JSONL. */
std::string
traceScenario(const GoldenScenario &scenario, unsigned jobs)
{
    std::vector<VectorSink> sinks(scenario.runs);
    std::vector<sim::ExperimentConfig> configs;
    configs.reserve(scenario.runs);
    for (std::size_t i = 0; i < scenario.runs; ++i) {
        sim::ExperimentConfig config = scenarioConfig(scenario, i);
        config.obsLevel = ObsLevel::Full;
        config.obsSink = &sinks[i];
        configs.push_back(std::move(config));
    }

    sim::ParallelRunner runner(jobs);
    (void)runner.runBatch(configs);

    std::ostringstream out;
    writeJsonlHeader(out);
    for (std::size_t i = 0; i < sinks.size(); ++i)
        writeJsonl(out, sinks[i].events(), i);
    return out.str();
}

std::string
goldenPath(const GoldenScenario &scenario)
{
    return std::string(QUETZAL_OBS_GOLDEN_DIR) + "/" + scenario.name +
        ".jsonl";
}

TEST(GoldenTrace, ScenariosMatchCheckedInReferences)
{
    const bool regen = std::getenv("QUETZAL_REGEN_GOLDEN") != nullptr;
    for (const GoldenScenario &scenario : kScenarios) {
        SCOPED_TRACE(scenario.name);
        const std::string trace = traceScenario(scenario, 1);
        ASSERT_FALSE(trace.empty());

        const std::string path = goldenPath(scenario);
        if (regen) {
            std::ofstream out(path, std::ios::binary);
            ASSERT_TRUE(out.is_open()) << path;
            out << trace;
            continue;
        }

        std::ifstream in(path, std::ios::binary);
        ASSERT_TRUE(in.is_open())
            << path << " missing — regenerate with QUETZAL_REGEN_GOLDEN=1";
        std::ostringstream expected;
        expected << in.rdbuf();
        EXPECT_EQ(trace, expected.str())
            << "trace drifted from " << path
            << " — if intentional, regenerate with QUETZAL_REGEN_GOLDEN=1";
    }
}

TEST(GoldenTrace, TracesAreIdenticalAcrossJobCounts)
{
    for (const GoldenScenario &scenario : kScenarios) {
        SCOPED_TRACE(scenario.name);
        const std::string serial = traceScenario(scenario, 1);
        const std::string parallel = traceScenario(scenario, 4);
        EXPECT_EQ(serial, parallel);
        ASSERT_FALSE(serial.empty());
    }
}

TEST(GoldenTrace, ReferencesReplayCleanly)
{
    // The checked-in files must parse with the reader (guards against
    // committing a regen from a diverged writer).
    const bool regen = std::getenv("QUETZAL_REGEN_GOLDEN") != nullptr;
    if (regen)
        GTEST_SKIP() << "regenerating";
    for (const GoldenScenario &scenario : kScenarios) {
        SCOPED_TRACE(scenario.name);
        std::ifstream in(goldenPath(scenario), std::ios::binary);
        ASSERT_TRUE(in.is_open());
        const std::vector<TraceRecord> records = readJsonl(in);
        ASSERT_FALSE(records.empty());
        EXPECT_EQ(records.back().run, scenario.runs - 1);
        EXPECT_EQ(records.back().event.kind, EventKind::RunEnd);
    }
}

} // namespace
} // namespace obs
} // namespace quetzal
