/**
 * @file
 * Unit tests for the telemetry event vocabulary: kind/level naming
 * round-trips, level gating, option packing and the sink/recorder
 * plumbing.
 */

#include <gtest/gtest.h>

#include "obs/event.hpp"
#include "obs/trace_sink.hpp"

namespace quetzal {
namespace obs {
namespace {

TEST(ObsEvent, KindNamesRoundTrip)
{
    for (std::size_t i = 0; i < kEventKindCount; ++i) {
        const auto kind = static_cast<EventKind>(i);
        const std::string name = eventKindName(kind);
        EXPECT_FALSE(name.empty());
        const auto parsed = parseEventKind(name);
        ASSERT_TRUE(parsed.has_value()) << name;
        EXPECT_EQ(*parsed, kind);
    }
    EXPECT_FALSE(parseEventKind("no-such-kind").has_value());
}

TEST(ObsEvent, KindNamesAreUnique)
{
    for (std::size_t i = 0; i < kEventKindCount; ++i) {
        for (std::size_t j = i + 1; j < kEventKindCount; ++j) {
            EXPECT_NE(eventKindName(static_cast<EventKind>(i)),
                      eventKindName(static_cast<EventKind>(j)));
        }
    }
}

TEST(ObsEvent, LevelNamesRoundTrip)
{
    for (ObsLevel level : {ObsLevel::Off, ObsLevel::Counters,
                           ObsLevel::Decisions, ObsLevel::Full}) {
        const auto parsed = parseObsLevel(obsLevelName(level));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, level);
    }
    EXPECT_FALSE(parseObsLevel("verbose").has_value());
}

TEST(ObsEvent, MinLevelNeverOff)
{
    // Every kind must be recordable at some enabled level; Off
    // records nothing by definition.
    for (std::size_t i = 0; i < kEventKindCount; ++i) {
        const auto kind = static_cast<EventKind>(i);
        EXPECT_GT(static_cast<int>(minLevel(kind)),
                  static_cast<int>(ObsLevel::Off))
            << eventKindName(kind);
    }
}

TEST(ObsEvent, PackOptionsRoundTrips)
{
    const std::vector<std::size_t> options = {1, 0, 3, 2};
    const std::uint32_t packed = packOptions(options);
    EXPECT_EQ(unpackOptions(packed, options.size()), options);

    EXPECT_EQ(packOptions(std::vector<std::size_t>{}), 0u);
    EXPECT_EQ(unpackOptions(0, 2),
              (std::vector<std::size_t>{0, 0}));

    // Maximum supported width: 8 tasks, 4 bits each.
    const std::vector<std::size_t> wide = {15, 14, 13, 12, 11, 10, 9, 8};
    EXPECT_EQ(unpackOptions(packOptions(wide), wide.size()), wide);
}

TEST(ObsRecorder, OffLevelIsInert)
{
    VectorSink sink;
    Recorder recorder(ObsLevel::Off, &sink);
    EXPECT_FALSE(recorder.enabled());
    for (std::size_t i = 0; i < kEventKindCount; ++i)
        EXPECT_FALSE(recorder.wants(static_cast<EventKind>(i)));
    EXPECT_EQ(recorder.level(), ObsLevel::Off);

    Recorder defaulted;
    EXPECT_FALSE(defaulted.enabled());

    Recorder noSink(ObsLevel::Full, nullptr);
    EXPECT_FALSE(noSink.enabled());
    EXPECT_EQ(noSink.level(), ObsLevel::Off);
}

TEST(ObsRecorder, LevelsAreCumulative)
{
    VectorSink sink;
    const Recorder counters(ObsLevel::Counters, &sink);
    const Recorder decisions(ObsLevel::Decisions, &sink);
    const Recorder full(ObsLevel::Full, &sink);
    for (std::size_t i = 0; i < kEventKindCount; ++i) {
        const auto kind = static_cast<EventKind>(i);
        // Whatever a lower level records, every higher level records.
        if (counters.wants(kind)) {
            EXPECT_TRUE(decisions.wants(kind)) << eventKindName(kind);
        }
        if (decisions.wants(kind)) {
            EXPECT_TRUE(full.wants(kind)) << eventKindName(kind);
        }
        // Full records everything.
        EXPECT_TRUE(full.wants(kind)) << eventKindName(kind);
    }
}

TEST(ObsRecorder, StampsEventsWithRunClock)
{
    VectorSink sink;
    Recorder recorder(ObsLevel::Full, &sink);
    recorder.setTime(42);

    Event event;
    event.kind = EventKind::Capture;
    event.tick = 999; // overwritten by the recorder clock
    recorder.record(event);

    recorder.recordAt(7, event);

    ASSERT_EQ(sink.size(), 2u);
    EXPECT_EQ(sink.events()[0].tick, 42);
    EXPECT_EQ(sink.events()[1].tick, 7);
}

TEST(ObsSink, TeeBroadcastsToAllDownstreams)
{
    VectorSink a;
    VectorSink b;
    TeeSink tee;
    tee.addSink(&a);
    tee.addSink(&b);
    tee.addSink(nullptr); // ignored

    Event event;
    event.kind = EventKind::RunEnd;
    event.id = 5;
    tee.record(event);

    ASSERT_EQ(a.size(), 1u);
    ASSERT_EQ(b.size(), 1u);
    EXPECT_EQ(a.events()[0].id, 5u);
    EXPECT_EQ(b.events()[0].id, 5u);

    a.clear();
    EXPECT_EQ(a.size(), 0u);
    EXPECT_EQ(b.size(), 1u);
}

} // namespace
} // namespace obs
} // namespace quetzal
