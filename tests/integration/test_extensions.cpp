/**
 * @file
 * Integration tests for the extensions beyond the paper's core
 * evaluation: measured-trace replay (the paper's §6.2 methodology)
 * and variable execution costs (the paper's §5.2 future-work
 * regime, compensated by the PID loop).
 */

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "energy/power_trace.hpp"
#include "sim/experiment.hpp"

namespace quetzal {
namespace sim {
namespace {

/** Temp-file helper: writes content, deletes on destruction. */
class TempCsv
{
  public:
    explicit TempCsv(const std::string &content)
        : filePath(std::string(::testing::TempDir()) +
                   "quetzal_trace_" + std::to_string(::getpid()) +
                   "_" + std::to_string(counter++) + ".csv")
    {
        std::ofstream out(filePath);
        out << content;
    }

    ~TempCsv() { std::remove(filePath.c_str()); }

    const std::string &path() const { return filePath; }

  private:
    static int counter;
    std::string filePath;
};

int TempCsv::counter = 0;

ExperimentConfig
baseConfig()
{
    ExperimentConfig cfg;
    cfg.environment = trace::EnvironmentPreset::Crowded;
    cfg.eventCount = 120;
    cfg.controller = ControllerKind::Quetzal;
    return cfg;
}

TEST(TraceReplay, ConstantTraceReplays)
{
    // A generous constant 80 mW trace: everything is compute-bound,
    // nothing recharges, so even NoAdapt barely drops.
    TempCsv trace("# time_seconds,watts\n0,0.08\n");
    auto cfg = baseConfig();
    cfg.controller = ControllerKind::NoAdapt;
    cfg.powerTraceCsv = trace.path();
    const Metrics m = runExperiment(cfg);
    EXPECT_EQ(m.powerFailures, 0u);
    EXPECT_EQ(m.rechargeTicks, 0);
    EXPECT_GT(m.txInterestingHq, 0u);
}

TEST(TraceReplay, StarvationTraceForcesRecharge)
{
    TempCsv trace("0,0.002\n");
    auto cfg = baseConfig();
    cfg.powerTraceCsv = trace.path();
    const Metrics m = runExperiment(cfg);
    EXPECT_GT(m.rechargeTicks, 0);
}

TEST(TraceReplay, ReplayIsDeterministic)
{
    TempCsv trace("0,0.01\n3600,0.05\n7200,0.008\n");
    auto cfg = baseConfig();
    cfg.powerTraceCsv = trace.path();
    const Metrics a = runExperiment(cfg);
    const Metrics b = runExperiment(cfg);
    EXPECT_EQ(a.interestingDiscardedTotal(),
              b.interestingDiscardedTotal());
    EXPECT_EQ(a.jobsCompleted, b.jobsCompleted);
}

TEST(TraceReplay, DiffersFromSyntheticSolar)
{
    TempCsv trace("0,0.015\n");
    auto cfg = baseConfig();
    const Metrics synthetic = runExperiment(cfg);
    cfg.powerTraceCsv = trace.path();
    const Metrics replayed = runExperiment(cfg);
    EXPECT_NE(synthetic.powerFailures, replayed.powerFailures);
}

TEST(TraceReplayDeathTest, MissingFileIsFatal)
{
    auto cfg = baseConfig();
    cfg.powerTraceCsv = "/nonexistent/trace.csv";
    EXPECT_EXIT(runExperiment(cfg), ::testing::ExitedWithCode(1),
                "cannot open");
}

TEST(ExecutionJitter, RunsAndChangesOutcomes)
{
    auto cfg = baseConfig();
    const Metrics steady = runExperiment(cfg);
    cfg.sim.executionJitterSigma = 0.4;
    const Metrics jittered = runExperiment(cfg);
    EXPECT_GT(jittered.jobsCompleted, 0u);
    // Observed service times now deviate from profiles.
    EXPECT_NE(steady.jobServiceSeconds.mean(),
              jittered.jobServiceSeconds.mean());
}

TEST(ExecutionJitter, PredictionErrorGrowsWithJitter)
{
    auto cfg = baseConfig();
    const Metrics steady = runExperiment(cfg);
    cfg.sim.executionJitterSigma = 0.5;
    const Metrics jittered = runExperiment(cfg);
    EXPECT_GT(jittered.predictionErrorSeconds.stddev(),
              steady.predictionErrorSeconds.stddev());
}

TEST(ExecutionJitter, SystemStaysEffectiveUnderJitter)
{
    // Even with heavily variable execution costs, Quetzal should
    // still beat NoAdapt clearly (robustness, not just calibration).
    auto cfg = baseConfig();
    cfg.sim.executionJitterSigma = 0.3;
    const Metrics qz = runExperiment(cfg);
    cfg.controller = ControllerKind::NoAdapt;
    const Metrics na = runExperiment(cfg);
    EXPECT_LT(qz.interestingDiscardedTotal(),
              na.interestingDiscardedTotal());
}

} // namespace
} // namespace sim
} // namespace quetzal
