/**
 * @file
 * Randomized property sweep over the whole stack: many small random
 * experiment configurations, each checked against the invariants that
 * must hold for *any* configuration — input conservation, counter
 * consistency, determinism, and the umbrella header compiling the
 * public API (this file includes it).
 */

#include <gtest/gtest.h>

#include "quetzal.hpp"
#include "util/random.hpp"

namespace quetzal {
namespace sim {
namespace {

ExperimentConfig
randomConfig(util::Rng &rng)
{
    static const ControllerKind kinds[] = {
        ControllerKind::Quetzal,       ControllerKind::QuetzalFcfs,
        ControllerKind::QuetzalLcfs,   ControllerKind::QuetzalAvgSe2e,
        ControllerKind::NoAdapt,       ControllerKind::AlwaysDegrade,
        ControllerKind::CatNap,        ControllerKind::BufferThreshold,
        ControllerKind::Zgo,           ControllerKind::Zgi,
    };
    static const trace::EnvironmentPreset envs[] = {
        trace::EnvironmentPreset::MoreCrowded,
        trace::EnvironmentPreset::Crowded,
        trace::EnvironmentPreset::LessCrowded,
        trace::EnvironmentPreset::Msp430Short,
    };

    ExperimentConfig cfg;
    cfg.controller = kinds[rng.uniformInt(0, 9)];
    cfg.environment = envs[rng.uniformInt(0, 3)];
    cfg.device = rng.bernoulli(0.3) ? app::DeviceKind::Msp430
                                    : app::DeviceKind::Apollo4;
    cfg.eventCount = static_cast<std::size_t>(rng.uniformInt(20, 80));
    cfg.seed = static_cast<std::uint64_t>(rng.uniformInt(1, 1 << 20));
    cfg.sim.bufferCapacity =
        static_cast<std::size_t>(rng.uniformInt(2, 24));
    cfg.harvesterCells = static_cast<int>(rng.uniformInt(1, 12));
    cfg.sim.capturePeriod = rng.uniformInt(1, 4) * 1000;
    cfg.bufferThreshold = rng.uniform(0.05, 1.0);
    cfg.system.taskWindow = 1u << rng.uniformInt(3, 8);
    cfg.system.arrivalWindow = 1u << rng.uniformInt(4, 9);
    cfg.usePid = rng.bernoulli(0.8);
    cfg.useCircuit = rng.bernoulli(0.8);
    cfg.sim.executionJitterSigma = rng.bernoulli(0.3) ? 0.2 : 0.0;
    if (rng.bernoulli(0.3)) {
        cfg.checkpointPolicy = app::CheckpointPolicy::Periodic;
        cfg.checkpointIntervalTicks = rng.uniformInt(100, 2000);
    }
    return cfg;
}

class RandomConfigProperty
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RandomConfigProperty, InvariantsHold)
{
    util::Rng rng(GetParam() * 7919 + 13);
    for (int round = 0; round < 3; ++round) {
        const ExperimentConfig cfg = randomConfig(rng);
        const Metrics m = runExperiment(cfg);

        // Every interesting capture is accounted exactly once.
        ASSERT_EQ(m.interestingCaptured,
                  m.iboDropsInteresting + m.fnDiscards +
                      m.txInterestingHq + m.txInterestingLq +
                      m.unprocessedInteresting)
            << controllerKindName(cfg.controller);

        // Captures bound everything downstream.
        ASSERT_LE(m.storedInputs, m.captures);
        ASSERT_LE(m.interestingCaptured, m.interestingInputsNominal);

        // Counter consistency.
        ASSERT_LE(m.degradedJobs, m.jobsCompleted);
        ASSERT_LE(m.fnDiscards + m.txInterestingHq + m.txInterestingLq,
                  m.jobsCompleted);
        ASSERT_LE(m.activeTicks + m.rechargeTicks,
                  static_cast<Tick>(4 * m.simulatedTicks));
        ASSERT_GT(m.simulatedTicks, 0);

        // Percentages are sane.
        ASSERT_GE(m.interestingDiscardedPct(), 0.0);
        ASSERT_LE(m.interestingDiscardedPct(), 100.0 + 1e-9);
        ASSERT_GE(m.highQualityShare(), 0.0);
        ASSERT_LE(m.highQualityShare(), 1.0);

        // JIT never rolls back; Periodic saves at least per failure
        // recovery when any occurred.
        if (cfg.checkpointPolicy == app::CheckpointPolicy::JustInTime) {
            ASSERT_EQ(m.rolledBackTicks, 0);
            ASSERT_EQ(m.checkpointSaves, m.powerFailures);
        }

        // Determinism: the identical configuration reproduces.
        const Metrics again = runExperiment(cfg);
        ASSERT_EQ(again.interestingDiscardedTotal(),
                  m.interestingDiscardedTotal());
        ASSERT_EQ(again.jobsCompleted, m.jobsCompleted);
        ASSERT_EQ(again.powerFailures, m.powerFailures);
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomConfigProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

} // namespace
} // namespace sim
} // namespace quetzal
