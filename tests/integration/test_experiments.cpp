/**
 * @file
 * Integration tests over the turn-key experiment runner: determinism,
 * conservation, and configuration plumbing.
 */

#include <gtest/gtest.h>

#include "sim/experiment.hpp"

namespace quetzal {
namespace sim {
namespace {

ExperimentConfig
baseConfig(ControllerKind kind)
{
    ExperimentConfig cfg;
    cfg.environment = trace::EnvironmentPreset::Crowded;
    cfg.eventCount = 120;
    cfg.controller = kind;
    cfg.seed = 21;
    return cfg;
}

TEST(Experiments, DeterministicAcrossRuns)
{
    const Metrics a = runExperiment(baseConfig(ControllerKind::Quetzal));
    const Metrics b = runExperiment(baseConfig(ControllerKind::Quetzal));
    EXPECT_EQ(a.interestingDiscardedTotal(),
              b.interestingDiscardedTotal());
    EXPECT_EQ(a.txInterestingHq, b.txInterestingHq);
    EXPECT_EQ(a.jobsCompleted, b.jobsCompleted);
    EXPECT_EQ(a.powerFailures, b.powerFailures);
}

TEST(Experiments, SeedChangesOutcome)
{
    auto cfg = baseConfig(ControllerKind::Quetzal);
    const Metrics a = runExperiment(cfg);
    cfg.seed = 22;
    const Metrics b = runExperiment(cfg);
    EXPECT_NE(a.captures, b.captures);
}

TEST(Experiments, LabelsForEveryKind)
{
    EXPECT_EQ(controllerKindName(ControllerKind::Quetzal), "QZ");
    EXPECT_EQ(controllerKindName(ControllerKind::NoAdapt), "NA");
    EXPECT_EQ(controllerKindName(ControllerKind::AlwaysDegrade), "AD");
    EXPECT_EQ(controllerKindName(ControllerKind::CatNap), "CN");
    EXPECT_EQ(controllerKindName(ControllerKind::Zgo), "PZO");
    EXPECT_EQ(controllerKindName(ControllerKind::Zgi), "PZI");
    EXPECT_EQ(controllerKindName(ControllerKind::Ideal), "Ideal");
    auto cfg = baseConfig(ControllerKind::BufferThreshold);
    cfg.bufferThreshold = 0.25;
    EXPECT_EQ(experimentLabel(cfg), "THR-25%");
}

/** Conservation invariant across every controller configuration. */
class ExperimentConservation
    : public ::testing::TestWithParam<ControllerKind>
{
};

TEST_P(ExperimentConservation, InterestingInputsAccountedOnce)
{
    const Metrics m = runExperiment(baseConfig(GetParam()));
    EXPECT_EQ(m.interestingCaptured,
              m.iboDropsInteresting + m.fnDiscards + m.txInterestingHq +
                  m.txInterestingLq + m.unprocessedInteresting);
    EXPECT_EQ(m.interestingCaptured, m.interestingInputsNominal);
    EXPECT_GT(m.jobsCompleted, 0u);
    EXPECT_GT(m.captures, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllControllers, ExperimentConservation,
    ::testing::Values(ControllerKind::Quetzal, ControllerKind::NoAdapt,
                      ControllerKind::AlwaysDegrade,
                      ControllerKind::CatNap,
                      ControllerKind::BufferThreshold,
                      ControllerKind::Zgo, ControllerKind::Zgi,
                      ControllerKind::Ideal,
                      ControllerKind::QuetzalFcfs,
                      ControllerKind::QuetzalLcfs,
                      ControllerKind::QuetzalAvgSe2e),
    [](const auto &info) {
        auto name = controllerKindName(info.param);
        for (auto &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

TEST(Experiments, CapturePeriodReducesCaptures)
{
    auto cfg = baseConfig(ControllerKind::NoAdapt);
    const Metrics fast = runExperiment(cfg);
    cfg.sim.capturePeriod = 5000;
    const Metrics slow = runExperiment(cfg);
    EXPECT_LT(slow.captures, fast.captures / 4);
    EXPECT_GT(slow.interestingMissedAtCapture(), 0u);
    EXPECT_EQ(fast.interestingInputsNominal,
              slow.interestingInputsNominal);
}

TEST(Experiments, HarvesterCellsChangeEnergyDynamics)
{
    auto cfg = baseConfig(ControllerKind::NoAdapt);
    cfg.harvesterCells = 2;
    const Metrics few = runExperiment(cfg);
    cfg.harvesterCells = 12;
    const Metrics many = runExperiment(cfg);
    // More cells, more power: fewer discarded interesting inputs.
    EXPECT_LT(many.interestingDiscardedTotal(),
              few.interestingDiscardedTotal());
}

TEST(Experiments, Msp430DeviceRuns)
{
    auto cfg = baseConfig(ControllerKind::Quetzal);
    cfg.device = app::DeviceKind::Msp430;
    cfg.environment = trace::EnvironmentPreset::Msp430Short;
    const Metrics m = runExperiment(cfg);
    EXPECT_GT(m.jobsCompleted, 0u);
    EXPECT_GT(m.txInterestingHq + m.txInterestingLq, 0u);
}

TEST(Experiments, IdealNeverOverflows)
{
    const Metrics m = runExperiment(baseConfig(ControllerKind::Ideal));
    EXPECT_EQ(m.iboDropsInteresting, 0u);
    EXPECT_EQ(m.unprocessedInteresting, 0u);
}

TEST(Experiments, QuetzalChargesSchedulerOverhead)
{
    const Metrics qz =
        runExperiment(baseConfig(ControllerKind::Quetzal));
    EXPECT_GT(qz.schedulerOverheadSeconds, 0.0);
    const Metrics na =
        runExperiment(baseConfig(ControllerKind::NoAdapt));
    EXPECT_EQ(na.schedulerOverheadSeconds, 0.0);
}

} // namespace
} // namespace sim
} // namespace quetzal
