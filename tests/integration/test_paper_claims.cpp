/**
 * @file
 * Directional reproduction of the paper's headline claims (the
 * *shape* of the evaluation — who wins and roughly how; see
 * EXPERIMENTS.md for the measured factors).
 */

#include <gtest/gtest.h>

#include "sim/experiment.hpp"

namespace quetzal {
namespace sim {
namespace {

Metrics
run(ControllerKind kind, trace::EnvironmentPreset env,
    std::size_t events = 250)
{
    ExperimentConfig cfg;
    cfg.environment = env;
    cfg.eventCount = events;
    cfg.controller = kind;
    return runExperiment(cfg);
}

/** Figure 9 shape per environment. */
class Fig9Shape
    : public ::testing::TestWithParam<trace::EnvironmentPreset>
{
};

TEST_P(Fig9Shape, QuetzalBeatsNoAdaptAndAlwaysDegrade)
{
    const Metrics qz = run(ControllerKind::Quetzal, GetParam());
    const Metrics na = run(ControllerKind::NoAdapt, GetParam());
    const Metrics ad = run(ControllerKind::AlwaysDegrade, GetParam());

    // Paper Fig. 9a: QZ discards 2.9-4.2x fewer than NA and
    // 2.2-4.2x fewer than AD. Directional requirement: strictly
    // fewer, with a solid margin vs NA.
    EXPECT_LT(static_cast<double>(qz.interestingDiscardedTotal()) * 1.5,
              static_cast<double>(na.interestingDiscardedTotal()));
    EXPECT_LT(qz.interestingDiscardedTotal(),
              ad.interestingDiscardedTotal());

    // Fig. 9 text: QZ reduces IBO-only discards by 5.7-16.6x.
    EXPECT_LT(static_cast<double>(qz.iboDropsInteresting +
                                  qz.unprocessedInteresting) *
                  3.0,
              static_cast<double>(na.iboDropsInteresting +
                                  na.unprocessedInteresting) +
                  1.0);
}

TEST_P(Fig9Shape, QuetzalNearIdealReporting)
{
    const Metrics qz = run(ControllerKind::Quetzal, GetParam());
    const Metrics ideal = run(ControllerKind::Ideal, GetParam());
    // Paper: QZ reports 92-98 % of the infinite-memory baseline.
    const double ratio =
        static_cast<double>(qz.txInterestingTotal()) /
        static_cast<double>(ideal.txInterestingTotal());
    EXPECT_GT(ratio, 0.80);
    EXPECT_LE(ratio, 1.02);
}

TEST_P(Fig9Shape, QuetzalMixesQualities)
{
    const Metrics qz = run(ControllerKind::Quetzal, GetParam());
    const Metrics ad = run(ControllerKind::AlwaysDegrade, GetParam());
    // AD reports only low-quality packets; QZ preserves a meaningful
    // high-quality share (paper: 49.6-69.1 %).
    EXPECT_EQ(ad.txInterestingHq, 0u);
    EXPECT_GT(qz.highQualityShare(), 0.10);
}

INSTANTIATE_TEST_SUITE_P(
    Environments, Fig9Shape,
    ::testing::Values(trace::EnvironmentPreset::MoreCrowded,
                      trace::EnvironmentPreset::Crowded,
                      trace::EnvironmentPreset::LessCrowded),
    [](const auto &info) { return trace::environmentName(info.param); });

TEST(Fig10Shape, QuetzalBeatsCatNap)
{
    const auto env = trace::EnvironmentPreset::Crowded;
    const Metrics qz = run(ControllerKind::Quetzal, env);
    const Metrics cn = run(ControllerKind::CatNap, env);
    // Paper: 2.2-4.3x fewer total discards than CatNap.
    EXPECT_LT(static_cast<double>(qz.interestingDiscardedTotal()) * 1.3,
              static_cast<double>(cn.interestingDiscardedTotal()));
}

TEST(Fig10Shape, ZgoOverDegradesLikeAlwaysDegrade)
{
    const auto env = trace::EnvironmentPreset::Crowded;
    const Metrics zgo = run(ControllerKind::Zgo, env);
    // The datasheet threshold sits above the whole trace: ZGO sends
    // (almost) everything at low quality.
    EXPECT_LT(zgo.highQualityShare(), 0.05);
}

TEST(Fig10Shape, QuetzalBeatsEvenOracleZgi)
{
    const auto env = trace::EnvironmentPreset::Crowded;
    const Metrics qz = run(ControllerKind::Quetzal, env);
    const Metrics zgi = run(ControllerKind::Zgi, env);
    // Paper: QZ discards 1.9-3.1x fewer than the unrealizable PZI
    // and reports 1.7-2.1x more high-quality inputs.
    EXPECT_LT(qz.interestingDiscardedTotal(),
              zgi.interestingDiscardedTotal());
    EXPECT_GT(static_cast<double>(qz.txInterestingHq),
              static_cast<double>(zgi.txInterestingHq));
}

TEST(Fig11Shape, QuetzalBeatsFixedThresholds)
{
    const auto env = trace::EnvironmentPreset::Crowded;
    const Metrics qz = run(ControllerKind::Quetzal, env);
    for (double threshold : {0.25, 0.5, 0.75}) {
        ExperimentConfig cfg;
        cfg.environment = env;
        cfg.eventCount = 250;
        cfg.controller = ControllerKind::BufferThreshold;
        cfg.bufferThreshold = threshold;
        const Metrics thr = runExperiment(cfg);
        EXPECT_LE(qz.interestingDiscardedTotal(),
                  thr.interestingDiscardedTotal())
            << "threshold " << threshold;
    }
}

TEST(Fig12Shape, EnergyAwareSjfBeatsOrderPoliciesAndAvgSe2e)
{
    // The paper's scale (1000 events): short traces are dominated by
    // a single night and too noisy for the policy comparison.
    const auto env = trace::EnvironmentPreset::Crowded;
    const Metrics sjf = run(ControllerKind::Quetzal, env, 1000);
    const Metrics fcfs = run(ControllerKind::QuetzalFcfs, env, 1000);
    const Metrics lcfs = run(ControllerKind::QuetzalLcfs, env, 1000);
    EXPECT_LE(sjf.interestingDiscardedTotal(),
              fcfs.interestingDiscardedTotal());
    EXPECT_LE(sjf.interestingDiscardedTotal(),
              lcfs.interestingDiscardedTotal());
    // The power-blind estimator mistimes degradations worst in the
    // heavy environment (paper: 2.2-4.2x).
    const auto heavy = trace::EnvironmentPreset::MoreCrowded;
    const Metrics sjfHeavy = run(ControllerKind::Quetzal, heavy, 1000);
    const Metrics avgHeavy =
        run(ControllerKind::QuetzalAvgSe2e, heavy, 1000);
    EXPECT_LT(static_cast<double>(
                  sjfHeavy.interestingDiscardedTotal()) * 1.5,
              static_cast<double>(
                  avgHeavy.interestingDiscardedTotal()));
}

TEST(Fig13Shape, QuetzalWinsOnMsp430Too)
{
    ExperimentConfig cfg;
    cfg.device = app::DeviceKind::Msp430;
    cfg.environment = trace::EnvironmentPreset::Msp430Short;
    cfg.eventCount = 250;
    cfg.controller = ControllerKind::Quetzal;
    const Metrics qz = runExperiment(cfg);
    cfg.controller = ControllerKind::NoAdapt;
    const Metrics na = runExperiment(cfg);
    // Paper: 2.8x fewer discarded on the MSP430.
    EXPECT_LT(qz.interestingDiscardedTotal(),
              na.interestingDiscardedTotal());
}

TEST(Fig2bShape, LowerCaptureRatesMissEvents)
{
    std::uint64_t previousMissed = 0;
    for (Tick period : {1000, 4000, 8000}) {
        ExperimentConfig cfg;
        cfg.environment = trace::EnvironmentPreset::Crowded;
        cfg.eventCount = 200;
        cfg.controller = ControllerKind::NoAdapt;
        cfg.sim.capturePeriod = period;
        const Metrics m = runExperiment(cfg);
        EXPECT_GE(m.interestingMissedAtCapture(), previousMissed);
        previousMissed = m.interestingMissedAtCapture();
    }
    EXPECT_GT(previousMissed, 0u);
}

} // namespace
} // namespace sim
} // namespace quetzal
