/**
 * @file
 * End-to-end run of the second application (the wildlife audio
 * monitor) through the full simulator — the API-generality claim of
 * paper section 5.2 as an automated test rather than just an example.
 */

#include <gtest/gtest.h>

#include "app/audio_monitor.hpp"
#include "baselines/controllers.hpp"
#include "energy/harvester.hpp"
#include "energy/solar_model.hpp"
#include "sim/simulator.hpp"
#include "trace/event_generator.hpp"

namespace quetzal {
namespace sim {
namespace {

struct AudioRig
{
    trace::EventTrace events;
    energy::PowerTrace watts;

    AudioRig()
    {
        trace::EventGeneratorConfig eventCfg;
        eventCfg.eventCount = 150;
        eventCfg.meanInterarrivalSeconds = 40.0;
        eventCfg.maxInterestingSeconds = 8.0;
        eventCfg.maxUninterestingSeconds = 25.0;
        eventCfg.interestingProbability = 0.3;
        eventCfg.seed = 9;
        events = trace::EventGenerator(eventCfg).generate();

        energy::SolarConfig solarCfg;
        solarCfg.peakIrradiance = 0.4;
        solarCfg.seed = 10;
        energy::HarvesterConfig harvesterCfg;
        harvesterCfg.cellCount = 4;
        watts = energy::Harvester(harvesterCfg)
                    .powerTrace(energy::SolarModel(solarCfg).generate(
                        (events.endTime() + 700 * kTicksPerSecond) * 2));
    }

    Metrics
    run(std::unique_ptr<core::Controller> controller)
    {
        core::TaskSystem system;
        const app::ApplicationModel appModel =
            app::buildAudioMonitorApp(system, app::apollo4Device());
        SimulationConfig cfg;
        cfg.bufferCapacity = 8;
        Simulator simulator(cfg, app::apollo4Device(), appModel, system,
                            *controller, watts, events);
        return simulator.run();
    }
};

TEST(AudioApp, RunsEndToEndUnderQuetzal)
{
    AudioRig rig;
    const Metrics m = rig.run(baselines::makeQuetzalVariantController(
        baselines::SchedulerKind::EnergyAwareSjf));
    EXPECT_GT(m.jobsCompleted, 0u);
    EXPECT_GT(m.txInterestingHq + m.txInterestingLq, 0u);
    EXPECT_EQ(m.interestingCaptured,
              m.iboDropsInteresting + m.fnDiscards + m.txInterestingHq +
                  m.txInterestingLq + m.unprocessedInteresting);
}

TEST(AudioApp, QuetzalBeatsNoAdaptHereToo)
{
    AudioRig rig;
    const Metrics qz =
        rig.run(baselines::makeQuetzalVariantController(
            baselines::SchedulerKind::EnergyAwareSjf));
    const Metrics na = rig.run(baselines::makeNoAdaptController());
    // The same machinery generalizes to a different pipeline.
    EXPECT_LE(qz.interestingDiscardedTotal(),
              na.interestingDiscardedTotal());
    EXPECT_EQ(na.txInterestingLq, 0u); // NA never degrades
}

TEST(AudioApp, DegradationUsesTheAudioOptions)
{
    AudioRig rig;
    const Metrics ad = rig.run(baselines::makeAlwaysDegradeController());
    EXPECT_EQ(ad.txInterestingHq, 0u);
    EXPECT_GT(ad.txInterestingLq, 0u);
}

} // namespace
} // namespace sim
} // namespace quetzal
