/**
 * @file
 * Tests for the controller factories: every configuration of the
 * paper's evaluation assembles and behaves per its policy.
 */

#include <gtest/gtest.h>

#include "baselines/controllers.hpp"
#include "../core/core_test_fixtures.hpp"

namespace quetzal {
namespace baselines {
namespace {

using core::testing_fixtures::makeSmallSystem;
using core::testing_fixtures::pushInput;

TEST(Factories, NamesAndCollaborators)
{
    EXPECT_EQ(makeNoAdaptController()->name(), "NoAdapt");
    EXPECT_EQ(makeAlwaysDegradeController()->name(), "AlwaysDegrade");
    EXPECT_EQ(makeCatNapController()->name(), "CatNap");
    EXPECT_EQ(makeBufferThresholdController(0.25)->name(),
              "Threshold-25%");
    EXPECT_EQ(makePowerThresholdController(1e-3, "ZGO")->name(), "ZGO");

    auto noAdapt = makeNoAdaptController();
    EXPECT_EQ(noAdapt->scheduler().name(), "fcfs");
    EXPECT_EQ(noAdapt->adaptation().name(), "no-adapt");
}

TEST(Factories, VariantNamesMatchKind)
{
    using K = SchedulerKind;
    EXPECT_EQ(makeQuetzalVariantController(K::EnergyAwareSjf)->name(),
              "Quetzal(EA-SJF)");
    EXPECT_EQ(makeQuetzalVariantController(K::Fcfs)->name(),
              "Quetzal(FCFS)");
    EXPECT_EQ(makeQuetzalVariantController(K::Lcfs)->name(),
              "Quetzal(LCFS)");
    EXPECT_EQ(makeQuetzalVariantController(K::AvgSe2e)->name(),
              "Quetzal(Avg-Se2e)");
}

TEST(Factories, AvgVariantUsesAveragingEstimator)
{
    auto controller =
        makeQuetzalVariantController(SchedulerKind::AvgSe2e);
    EXPECT_EQ(controller->estimator().name(), "avg-se2e");
    auto sjf =
        makeQuetzalVariantController(SchedulerKind::EnergyAwareSjf,
                                     false);
    EXPECT_EQ(sjf->estimator().name(), "energy-aware(exact)");
}

TEST(Controllers, NoAdaptNeverDegrades)
{
    auto s = makeSmallSystem();
    auto controller = makeNoAdaptController();
    queueing::InputBuffer buffer(2);
    pushInput(buffer, s, 1, 0, s.transmitJob);
    pushInput(buffer, s, 2, 0, s.transmitJob);
    const auto selection =
        controller->selectJob(*s.system, buffer, 1e-6);
    ASSERT_TRUE(selection.has_value());
    EXPECT_FALSE(selection->degraded);
    EXPECT_EQ(selection->optionPerTask, std::vector<std::size_t>{0});
}

TEST(Controllers, AlwaysDegradeAlwaysDoes)
{
    auto s = makeSmallSystem();
    auto controller = makeAlwaysDegradeController();
    queueing::InputBuffer buffer(10);
    pushInput(buffer, s, 1, 0, s.transmitJob);
    const auto selection =
        controller->selectJob(*s.system, buffer, 1.0);
    ASSERT_TRUE(selection.has_value());
    EXPECT_TRUE(selection->degraded);
    EXPECT_EQ(selection->optionPerTask, std::vector<std::size_t>{1});
}

TEST(Controllers, CatNapDegradesOnlyWhenFull)
{
    auto s = makeSmallSystem();
    auto controller = makeCatNapController();
    queueing::InputBuffer buffer(2);
    pushInput(buffer, s, 1, 0, s.transmitJob);
    auto selection = controller->selectJob(*s.system, buffer, 1e-6);
    ASSERT_TRUE(selection.has_value());
    EXPECT_FALSE(selection->degraded);
    pushInput(buffer, s, 2, 0, s.transmitJob);
    selection = controller->selectJob(*s.system, buffer, 1e-6);
    ASSERT_TRUE(selection.has_value());
    EXPECT_TRUE(selection->degraded);
}

TEST(Controllers, QuetzalVariantsShareIboEngine)
{
    for (auto kind : {SchedulerKind::EnergyAwareSjf, SchedulerKind::Fcfs,
                      SchedulerKind::Lcfs, SchedulerKind::AvgSe2e}) {
        auto controller = makeQuetzalVariantController(kind);
        EXPECT_EQ(controller->adaptation().name(), "ibo-engine")
            << schedulerKindName(kind);
    }
}

} // namespace
} // namespace baselines
} // namespace quetzal
