/**
 * @file
 * Tests for the FCFS / LCFS comparison scheduling policies.
 */

#include <gtest/gtest.h>

#include "baselines/policies.hpp"
#include "../core/core_test_fixtures.hpp"

namespace quetzal {
namespace baselines {
namespace {

using core::testing_fixtures::makeSmallSystem;
using core::testing_fixtures::pushInput;

TEST(Fcfs, PicksOldestCapture)
{
    auto s = makeSmallSystem();
    queueing::InputBuffer buffer(10);
    pushInput(buffer, s, 1, 500, s.classifyJob);
    pushInput(buffer, s, 2, 100, s.transmitJob);
    pushInput(buffer, s, 3, 300, s.classifyJob);
    FcfsPolicy policy;
    core::EnergyAwareEstimator exact(false);
    const auto decision =
        policy.select(*s.system, buffer, exact, {1.0, 255}, 0.0);
    ASSERT_TRUE(decision.has_value());
    EXPECT_EQ(buffer.record(decision->slot).id, 2u);
    EXPECT_EQ(decision->jobId, s.transmitJob);
}

TEST(Lcfs, PicksNewestCapture)
{
    auto s = makeSmallSystem();
    queueing::InputBuffer buffer(10);
    pushInput(buffer, s, 1, 500, s.classifyJob);
    pushInput(buffer, s, 2, 100, s.transmitJob);
    pushInput(buffer, s, 3, 900, s.classifyJob);
    LcfsPolicy policy;
    core::EnergyAwareEstimator exact(false);
    const auto decision =
        policy.select(*s.system, buffer, exact, {1.0, 255}, 0.0);
    ASSERT_TRUE(decision.has_value());
    EXPECT_EQ(buffer.record(decision->slot).id, 3u);
}

TEST(Fcfs, TieBreaksOnEnqueueTime)
{
    auto s = makeSmallSystem();
    queueing::InputBuffer buffer(10);
    // Same capture tick; the re-enqueued (spawned) one is newer.
    queueing::InputRecord fresh;
    fresh.id = 1;
    fresh.captureTick = 100;
    fresh.enqueueTick = 100;
    fresh.jobId = s.classifyJob;
    queueing::InputRecord respawned;
    respawned.id = 2;
    respawned.captureTick = 100;
    respawned.enqueueTick = 900;
    respawned.jobId = s.transmitJob;
    buffer.tryPush(respawned);
    buffer.tryPush(fresh);
    FcfsPolicy policy;
    core::EnergyAwareEstimator exact(false);
    const auto decision =
        policy.select(*s.system, buffer, exact, {1.0, 255}, 0.0);
    ASSERT_TRUE(decision.has_value());
    EXPECT_EQ(buffer.record(decision->slot).id, 1u);
}

TEST(Fcfs, SkipsInFlight)
{
    auto s = makeSmallSystem();
    queueing::InputBuffer buffer(10);
    pushInput(buffer, s, 1, 100, s.classifyJob);
    pushInput(buffer, s, 2, 200, s.classifyJob);
    buffer.markInFlight(*buffer.oldestSlotForJob(s.classifyJob));
    FcfsPolicy policy;
    core::EnergyAwareEstimator exact(false);
    const auto decision =
        policy.select(*s.system, buffer, exact, {1.0, 255}, 0.0);
    ASSERT_TRUE(decision.has_value());
    EXPECT_EQ(buffer.record(decision->slot).id, 2u);
}

TEST(Fcfs, EmptyAndAllInFlightGiveNothing)
{
    auto s = makeSmallSystem();
    queueing::InputBuffer buffer(10);
    FcfsPolicy policy;
    core::EnergyAwareEstimator exact(false);
    EXPECT_FALSE(policy.select(*s.system, buffer, exact, {1.0, 255},
                               0.0)
                     .has_value());
    pushInput(buffer, s, 1, 100, s.classifyJob);
    buffer.markInFlight(*buffer.oldestSlotForJob(s.classifyJob));
    EXPECT_FALSE(policy.select(*s.system, buffer, exact, {1.0, 255},
                               0.0)
                     .has_value());
}

TEST(Fcfs, ReportsExpectedServiceForBookkeeping)
{
    auto s = makeSmallSystem();
    queueing::InputBuffer buffer(10);
    pushInput(buffer, s, 1, 100, s.transmitJob);
    FcfsPolicy policy;
    core::EnergyAwareEstimator exact(false);
    const auto decision =
        policy.select(*s.system, buffer, exact, {1.0, 255}, 0.0);
    ASSERT_TRUE(decision.has_value());
    EXPECT_NEAR(decision->expectedServiceSeconds, 0.8, 1e-9);
}

} // namespace
} // namespace baselines
} // namespace quetzal
