/**
 * @file
 * Tests for the baseline adaptation policies (NoAdapt, AlwaysDegrade,
 * buffer threshold / CatNap, power threshold / ZGO-ZGI).
 */

#include <gtest/gtest.h>

#include "baselines/adaptation.hpp"
#include "../core/core_test_fixtures.hpp"

namespace quetzal {
namespace baselines {
namespace {

using core::testing_fixtures::makeSmallSystem;
using core::testing_fixtures::pushInput;

TEST(NoAdapt, AlwaysFullQuality)
{
    auto s = makeSmallSystem();
    queueing::InputBuffer buffer(2);
    pushInput(buffer, s, 1, 0, s.classifyJob);
    pushInput(buffer, s, 2, 0, s.classifyJob); // buffer full
    NoAdaptPolicy policy;
    core::EnergyAwareEstimator exact(false);
    const auto decision =
        policy.adapt(*s.system, s.system->job(s.classifyJob), buffer,
                     exact, {1e-6, 0}, 0.0);
    EXPECT_EQ(decision.optionPerTask, std::vector<std::size_t>{0});
    EXPECT_FALSE(decision.degraded);
}

TEST(AlwaysDegrade, AlwaysLowestQuality)
{
    auto s = makeSmallSystem();
    queueing::InputBuffer buffer(10);
    pushInput(buffer, s, 1, 0, s.transmitJob);
    AlwaysDegradePolicy policy;
    core::EnergyAwareEstimator exact(false);
    const auto decision =
        policy.adapt(*s.system, s.system->job(s.transmitJob), buffer,
                     exact, {1.0, 255}, 0.0);
    EXPECT_EQ(decision.optionPerTask, std::vector<std::size_t>{1});
    EXPECT_TRUE(decision.degraded);
}

TEST(BufferThreshold, DegradesAboveThresholdOnly)
{
    auto s = makeSmallSystem();
    BufferThresholdPolicy policy(0.5);
    core::EnergyAwareEstimator exact(false);
    queueing::InputBuffer buffer(10);
    for (std::uint64_t i = 0; i < 4; ++i)
        pushInput(buffer, s, i, 0, s.classifyJob);
    // 40 % occupancy: below threshold.
    auto decision =
        policy.adapt(*s.system, s.system->job(s.classifyJob), buffer,
                     exact, {1.0, 255}, 0.0);
    EXPECT_FALSE(decision.degraded);
    pushInput(buffer, s, 10, 0, s.classifyJob);
    // 50 % occupancy: at threshold -> degrade.
    decision =
        policy.adapt(*s.system, s.system->job(s.classifyJob), buffer,
                     exact, {1.0, 255}, 0.0);
    EXPECT_TRUE(decision.degraded);
    EXPECT_EQ(decision.optionPerTask, std::vector<std::size_t>{1});
}

TEST(BufferThreshold, CatNapIsHundredPercent)
{
    auto s = makeSmallSystem();
    BufferThresholdPolicy catnap(1.0);
    core::EnergyAwareEstimator exact(false);
    queueing::InputBuffer buffer(2);
    pushInput(buffer, s, 1, 0, s.classifyJob);
    auto decision =
        catnap.adapt(*s.system, s.system->job(s.classifyJob), buffer,
                     exact, {1e-6, 0}, 0.0);
    EXPECT_FALSE(decision.degraded); // half full: CatNap sleeps on it
    pushInput(buffer, s, 2, 0, s.classifyJob);
    decision =
        catnap.adapt(*s.system, s.system->job(s.classifyJob), buffer,
                     exact, {1e-6, 0}, 0.0);
    EXPECT_TRUE(decision.degraded); // only reacts when already full
}

TEST(BufferThreshold, NameCarriesPercent)
{
    EXPECT_EQ(BufferThresholdPolicy(0.25).name(),
              "buffer-threshold-25%");
    EXPECT_DOUBLE_EQ(BufferThresholdPolicy(0.75).threshold(), 0.75);
}

TEST(PowerThreshold, DegradesBelowThreshold)
{
    auto s = makeSmallSystem();
    PowerThresholdPolicy policy(20e-3, "ZGI");
    core::EnergyAwareEstimator exact(false);
    queueing::InputBuffer buffer(10);
    pushInput(buffer, s, 1, 0, s.transmitJob);
    // Above the threshold: full quality, even with a filling buffer.
    auto decision =
        policy.adapt(*s.system, s.system->job(s.transmitJob), buffer,
                     exact, {25e-3, 0}, 0.0);
    EXPECT_FALSE(decision.degraded);
    // Below the threshold: degrade, even with an empty-ish buffer —
    // the unnecessary degradation the paper criticizes.
    decision =
        policy.adapt(*s.system, s.system->job(s.transmitJob), buffer,
                     exact, {15e-3, 0}, 0.0);
    EXPECT_TRUE(decision.degraded);
    EXPECT_EQ(policy.name(), "ZGI");
}

TEST(PowerThreshold, ZgoDatasheetThresholdDegradesAlmostAlways)
{
    auto s = makeSmallSystem();
    // Datasheet-derived threshold far above any real input power.
    PowerThresholdPolicy zgo(70e-3, "ZGO");
    core::EnergyAwareEstimator exact(false);
    queueing::InputBuffer buffer(10);
    pushInput(buffer, s, 1, 0, s.transmitJob);
    for (double mw : {1.0, 5.0, 15.0, 30.0, 60.0}) {
        const auto decision =
            zgo.adapt(*s.system, s.system->job(s.transmitJob), buffer,
                      exact, {mw * 1e-3, 0}, 0.0);
        EXPECT_TRUE(decision.degraded) << mw << " mW";
    }
}

TEST(AdaptationDeathTest, InvalidThresholdsFatal)
{
    EXPECT_EXIT(BufferThresholdPolicy(0.0), ::testing::ExitedWithCode(1),
                "threshold");
    EXPECT_EXIT(BufferThresholdPolicy(1.5), ::testing::ExitedWithCode(1),
                "threshold");
    EXPECT_EXIT(PowerThresholdPolicy(-1.0, "bad"),
                ::testing::ExitedWithCode(1), "threshold");
}

} // namespace
} // namespace baselines
} // namespace quetzal
