/**
 * @file
 * FaultSpec tests: the default spec is provably inert, each
 * sub-block's active() predicate matches its documented semantics,
 * and the fault-class vocabulary round-trips through its names.
 */

#include <gtest/gtest.h>

#include "fault/fault_spec.hpp"

namespace quetzal {
namespace fault {
namespace {

TEST(FaultSpec, DefaultIsInert)
{
    const FaultSpec spec;
    EXPECT_TRUE(spec.inert());
    EXPECT_FALSE(spec.measurement.active());
    EXPECT_FALSE(spec.adc.active());
    EXPECT_FALSE(spec.powerTrace.active());
    EXPECT_FALSE(spec.arrivals.active());
    EXPECT_FALSE(spec.execution.active());
}

TEST(FaultSpec, AnySingleSubBlockBreaksInertness)
{
    {
        FaultSpec s;
        s.measurement.biasWatts = 1e-3;
        EXPECT_FALSE(s.inert());
    }
    {
        FaultSpec s;
        s.measurement.noiseSigma = 0.1;
        EXPECT_FALSE(s.inert());
    }
    {
        FaultSpec s;
        s.adc.flipMask = 0x01;
        EXPECT_FALSE(s.inert());
    }
    {
        FaultSpec s;
        s.powerTrace.dropoutsPerHour = 2.0;
        s.powerTrace.dropoutSeconds = 5.0;
        EXPECT_FALSE(s.inert());
    }
    {
        FaultSpec s;
        s.arrivals.captureJitterMs = 50;
        EXPECT_FALSE(s.inert());
    }
    {
        FaultSpec s;
        s.execution.overrunProbability = 0.1;
        s.execution.overrunFactor = 2.0;
        EXPECT_FALSE(s.inert());
    }
}

TEST(FaultSpec, HalfConfiguredBlocksStayInactive)
{
    // A rate without a width (or vice versa) cannot fire; the spec
    // must not count it as active.
    FaultSpec s;
    s.powerTrace.dropoutsPerHour = 10.0; // no dropoutSeconds
    EXPECT_TRUE(s.inert());
    s.powerTrace.dropoutsPerHour = 0.0;
    s.powerTrace.spikesPerHour = 10.0;
    s.powerTrace.spikeSeconds = 5.0; // spikeFactor still 1.0
    EXPECT_TRUE(s.inert());
    s.powerTrace = {};
    s.execution.overrunProbability = 0.5; // factor still 1.0
    EXPECT_TRUE(s.inert());
    s.execution = {};
    s.arrivals.burstsPerHour = 3.0; // no burstSeconds
    EXPECT_TRUE(s.inert());
}

TEST(FaultSpec, SaturateMaxBelow255IsAnAdcFault)
{
    FaultSpec s;
    s.adc.saturateMax = 254;
    EXPECT_TRUE(s.adc.active());
    EXPECT_FALSE(s.inert());
}

TEST(FaultClassNames, RoundTripAllClasses)
{
    for (std::size_t i = 0; i < kFaultClassCount; ++i) {
        const auto cls = static_cast<FaultClass>(i);
        const std::string name = faultClassName(cls);
        EXPECT_FALSE(name.empty());
        const auto parsed = parseFaultClass(name);
        ASSERT_TRUE(parsed.has_value()) << name;
        EXPECT_EQ(*parsed, cls) << name;
    }
}

TEST(FaultClassNames, NamesAreDistinct)
{
    for (std::size_t i = 0; i < kFaultClassCount; ++i)
        for (std::size_t j = i + 1; j < kFaultClassCount; ++j)
            EXPECT_NE(faultClassName(static_cast<FaultClass>(i)),
                      faultClassName(static_cast<FaultClass>(j)));
}

TEST(FaultClassNames, UnknownNameParsesToNothing)
{
    EXPECT_FALSE(parseFaultClass("").has_value());
    EXPECT_FALSE(parseFaultClass("meteor_strike").has_value());
    EXPECT_FALSE(parseFaultClass("MEASUREMENT_BIAS").has_value());
}

} // namespace
} // namespace fault
} // namespace quetzal
