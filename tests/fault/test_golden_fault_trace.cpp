/**
 * @file
 * Golden fault-trace regression tests, mirroring
 * tests/obs/test_golden_trace.cpp for *faulted* runs: a seeded
 * scenario exercising every fault class is serialized to JSONL and
 * compared byte-for-byte against a reference in tests/fault/golden/,
 * asserted identical between --jobs 1 and --jobs 4, and replayed
 * through obs::ReplayCounters so the injected / detected / mitigated
 * totals are pinned as exact numbers. Regenerate intentionally with:
 *
 *   QUETZAL_REGEN_GOLDEN=1 ./test_fault --gtest_filter='GoldenFaultTrace.*'
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics_registry.hpp"
#include "obs/trace_io.hpp"
#include "obs/trace_sink.hpp"
#include "sim/experiment.hpp"
#include "sim/runner.hpp"

#ifndef QUETZAL_FAULT_GOLDEN_DIR
#error "build must define QUETZAL_FAULT_GOLDEN_DIR"
#endif

namespace quetzal {
namespace fault {
namespace {

constexpr std::size_t kRuns = 2;

/**
 * Pinned fault totals of the committed golden reference, summed over
 * both runs (see ReplayCountersPinInjectionTotals). Regenerating the
 * reference re-pins these on purpose.
 */
constexpr std::uint64_t kPinnedInjected = 101;
constexpr std::uint64_t kPinnedDetected = 5;
constexpr std::uint64_t kPinnedMitigated = 3;

/**
 * A small faulted scenario that fires every fault class: persistent
 * measurement bias + noise, an ADC stuck bit, power dropouts and
 * spikes, arrival bursts, capture jitter, and certain execution
 * overruns. Deliberately tiny — the reference lives in git.
 */
sim::ExperimentConfig
faultedConfig(std::size_t runIndex)
{
    sim::ExperimentConfig config;
    config.controller = sim::ControllerKind::Quetzal;
    config.environment = trace::EnvironmentPreset::Msp430Short;
    config.eventCount = 3;
    config.seed = runIndex + 1;
    config.sim.bufferCapacity = 6;
    config.sim.drainTicks = 10 * kTicksPerSecond;

    config.faults.seed = 2026;
    config.faults.measurement.biasWatts = 0.004;
    config.faults.measurement.noiseSigma = 0.05;
    config.faults.adc.stuckHighMask = 0x02;
    config.faults.powerTrace.dropoutsPerHour = 240.0;
    config.faults.powerTrace.dropoutSeconds = 2.0;
    config.faults.powerTrace.spikesPerHour = 240.0;
    config.faults.powerTrace.spikeSeconds = 1.0;
    config.faults.powerTrace.spikeFactor = 3.0;
    config.faults.arrivals.burstsPerHour = 360.0;
    config.faults.arrivals.burstSeconds = 2.0;
    config.faults.arrivals.captureJitterMs = 50;
    config.faults.execution.overrunProbability = 1.0;
    config.faults.execution.overrunFactor = 1.5;
    config.faults.detectErrorSeconds = 0.25;
    config.faults.mitigateStreak = 2;
    return config;
}

/** Run the faulted ensemble on `jobs` workers; serialize to JSONL. */
std::string
traceFaultedScenario(unsigned jobs)
{
    std::vector<obs::VectorSink> sinks(kRuns);
    std::vector<sim::ExperimentConfig> configs;
    configs.reserve(kRuns);
    for (std::size_t i = 0; i < kRuns; ++i) {
        sim::ExperimentConfig config = faultedConfig(i);
        config.obsLevel = obs::ObsLevel::Full;
        config.obsSink = &sinks[i];
        configs.push_back(std::move(config));
    }

    sim::ParallelRunner runner(jobs);
    (void)runner.runBatch(configs);

    std::ostringstream out;
    obs::writeJsonlHeader(out);
    for (std::size_t i = 0; i < sinks.size(); ++i)
        obs::writeJsonl(out, sinks[i].events(), i);
    return out.str();
}

std::string
goldenPath()
{
    return std::string(QUETZAL_FAULT_GOLDEN_DIR) +
        "/faulted_quetzal_short.jsonl";
}

TEST(GoldenFaultTrace, MatchesCheckedInReference)
{
    const bool regen = std::getenv("QUETZAL_REGEN_GOLDEN") != nullptr;
    const std::string trace = traceFaultedScenario(1);
    ASSERT_FALSE(trace.empty());

    const std::string path = goldenPath();
    if (regen) {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out.is_open()) << path;
        out << trace;
        return;
    }

    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.is_open())
        << path << " missing — regenerate with QUETZAL_REGEN_GOLDEN=1";
    std::ostringstream expected;
    expected << in.rdbuf();
    EXPECT_EQ(trace, expected.str())
        << "faulted trace drifted from " << path
        << " — if intentional, regenerate with QUETZAL_REGEN_GOLDEN=1";
}

TEST(GoldenFaultTrace, IdenticalAcrossJobCounts)
{
    const std::string serial = traceFaultedScenario(1);
    const std::string parallel = traceFaultedScenario(4);
    EXPECT_EQ(serial, parallel);
    ASSERT_FALSE(serial.empty());
}

TEST(GoldenFaultTrace, EveryFaultClassAppearsAsTypedEvent)
{
    const std::string trace = traceFaultedScenario(1);
    std::istringstream in(trace);
    const std::vector<obs::TraceRecord> records = obs::readJsonl(in);
    ASSERT_FALSE(records.empty());

    std::vector<bool> seen(kFaultClassCount, false);
    for (const obs::TraceRecord &record : records) {
        if (record.event.kind != obs::EventKind::FaultInjected)
            continue;
        const auto cls = static_cast<std::size_t>(record.event.value);
        ASSERT_LT(cls, kFaultClassCount);
        seen[cls] = true;
    }
    for (std::size_t cls = 0; cls < kFaultClassCount; ++cls)
        EXPECT_TRUE(seen[cls])
            << "no FaultInjected event for class "
            << faultClassName(static_cast<FaultClass>(cls));
}

TEST(GoldenFaultTrace, ReplayCountersPinInjectionTotals)
{
    const bool regen = std::getenv("QUETZAL_REGEN_GOLDEN") != nullptr;
    if (regen)
        GTEST_SKIP() << "regenerating";

    std::ifstream in(goldenPath(), std::ios::binary);
    ASSERT_TRUE(in.is_open());
    const std::vector<obs::TraceRecord> records = obs::readJsonl(in);
    ASSERT_FALSE(records.empty());

    obs::MetricsRegistry registry;
    for (const obs::TraceRecord &record : records)
        registry.record(record.event);
    const obs::ReplayCounters &counters = registry.counters();

    // Exact totals of the committed reference: any change to fault
    // timing, emission points or the episode machine moves these.
    EXPECT_EQ(counters.faultsInjected, kPinnedInjected);
    EXPECT_EQ(counters.faultsDetected, kPinnedDetected);
    EXPECT_EQ(counters.faultsMitigated, kPinnedMitigated);
    EXPECT_GT(counters.faultsInjected, 0u);
    EXPECT_GT(counters.faultsDetected, 0u);
}

} // namespace
} // namespace fault
} // namespace quetzal
