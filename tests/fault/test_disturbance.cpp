/**
 * @file
 * Disturbance-signal tests: shapes match their definitions sample by
 * sample, and signals are pure functions of (config, seed).
 */

#include <cmath>

#include <gtest/gtest.h>

#include "fault/disturbance.hpp"

namespace quetzal {
namespace fault {
namespace {

TEST(Disturbance, StepIsZeroThenAmplitude)
{
    Disturbance d;
    d.shape = DisturbanceShape::Step;
    d.amplitude = 2.5;
    d.startIndex = 4;
    const auto samples = disturbanceSamples(d, 10);
    ASSERT_EQ(samples.size(), 10u);
    for (std::size_t k = 0; k < 4; ++k)
        EXPECT_EQ(samples[k], 0.0) << k;
    for (std::size_t k = 4; k < 10; ++k)
        EXPECT_EQ(samples[k], 2.5) << k;
}

TEST(Disturbance, RampRisesLinearlyThenHolds)
{
    Disturbance d;
    d.shape = DisturbanceShape::Ramp;
    d.amplitude = 8.0;
    d.startIndex = 2;
    d.rampLength = 4;
    const auto samples = disturbanceSamples(d, 10);
    EXPECT_EQ(samples[0], 0.0);
    EXPECT_EQ(samples[1], 0.0);
    EXPECT_DOUBLE_EQ(samples[2], 2.0);
    EXPECT_DOUBLE_EQ(samples[3], 4.0);
    EXPECT_DOUBLE_EQ(samples[4], 6.0);
    EXPECT_DOUBLE_EQ(samples[5], 8.0);
    for (std::size_t k = 6; k < 10; ++k)
        EXPECT_DOUBLE_EQ(samples[k], 8.0) << k;
}

TEST(Disturbance, RampRejectsZeroLength)
{
    Disturbance d;
    d.shape = DisturbanceShape::Ramp;
    d.rampLength = 0;
    EXPECT_DEATH(disturbanceSamples(d, 5), "rampLength");
}

TEST(Disturbance, NoiseIsSeededAndReproducible)
{
    Disturbance d;
    d.shape = DisturbanceShape::Noise;
    d.amplitude = 1.5;
    d.seed = 11;
    const auto a = disturbanceSamples(d, 100);
    const auto b = disturbanceSamples(d, 100);
    ASSERT_EQ(a, b);

    d.seed = 12;
    const auto c = disturbanceSamples(d, 100);
    EXPECT_NE(a, c);
}

TEST(Disturbance, NoiseRespectsStartIndex)
{
    Disturbance d;
    d.shape = DisturbanceShape::Noise;
    d.amplitude = 1.0;
    d.startIndex = 5;
    const auto samples = disturbanceSamples(d, 20);
    for (std::size_t k = 0; k < 5; ++k)
        EXPECT_EQ(samples[k], 0.0) << k;
    bool anyNonZero = false;
    for (std::size_t k = 5; k < 20; ++k)
        anyNonZero = anyNonZero || samples[k] != 0.0;
    EXPECT_TRUE(anyNonZero);
}

TEST(Disturbance, NoiseScalesWithAmplitude)
{
    Disturbance d;
    d.shape = DisturbanceShape::Noise;
    d.amplitude = 1.0;
    d.seed = 21;
    const auto unit = disturbanceSamples(d, 50);
    d.amplitude = 3.0;
    const auto scaled = disturbanceSamples(d, 50);
    for (std::size_t k = 0; k < 50; ++k)
        ASSERT_NEAR(scaled[k], 3.0 * unit[k], 1e-12) << k;
}

TEST(Disturbance, ZeroLengthYieldsEmptySignal)
{
    EXPECT_TRUE(disturbanceSamples({}, 0).empty());
}

} // namespace
} // namespace fault
} // namespace quetzal
