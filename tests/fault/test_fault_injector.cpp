/**
 * @file
 * FaultInjector unit tests: window drawing is seeded and
 * deterministic, every perturbation matches its spec, the
 * detection/mitigation episode machine follows its thresholds, and —
 * the load-bearing invariant — RNG consumption never depends on
 * whether a telemetry observer is attached.
 */

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "energy/power_trace.hpp"
#include "fault/fault_injector.hpp"
#include "obs/trace_sink.hpp"

namespace quetzal {
namespace fault {
namespace {

constexpr Tick kHour = 3600 * kTicksPerSecond;

FaultSpec
windowedSpec()
{
    FaultSpec spec;
    spec.powerTrace.dropoutsPerHour = 6.0;
    spec.powerTrace.dropoutSeconds = 20.0;
    spec.powerTrace.spikesPerHour = 4.0;
    spec.powerTrace.spikeSeconds = 10.0;
    spec.powerTrace.spikeFactor = 3.0;
    spec.arrivals.burstsPerHour = 5.0;
    spec.arrivals.burstSeconds = 15.0;
    return spec;
}

TEST(FaultInjectorWindows, DeterministicForEqualSeeds)
{
    FaultInjector a(windowedSpec(), 42);
    FaultInjector b(windowedSpec(), 42);
    a.prepare(kHour);
    b.prepare(kHour);
    ASSERT_EQ(a.windows().size(), b.windows().size());
    for (std::size_t i = 0; i < a.windows().size(); ++i) {
        EXPECT_EQ(a.windows()[i].start, b.windows()[i].start) << i;
        EXPECT_EQ(a.windows()[i].end, b.windows()[i].end) << i;
        EXPECT_EQ(a.windows()[i].cls, b.windows()[i].cls) << i;
    }
    ASSERT_FALSE(a.windows().empty());
}

TEST(FaultInjectorWindows, RunSeedRetimesTheFaults)
{
    FaultInjector a(windowedSpec(), 1);
    FaultInjector b(windowedSpec(), 2);
    a.prepare(kHour);
    b.prepare(kHour);
    bool identical = a.windows().size() == b.windows().size();
    if (identical) {
        for (std::size_t i = 0; i < a.windows().size(); ++i)
            identical = identical &&
                a.windows()[i].start == b.windows()[i].start;
    }
    EXPECT_FALSE(identical);
}

TEST(FaultInjectorWindows, SortedInBoundsAndCorrectWidths)
{
    FaultInjector injector(windowedSpec(), 7);
    injector.prepare(kHour);
    Tick previousStart = -1;
    for (const FaultInjector::Window &w : injector.windows()) {
        EXPECT_GE(w.start, previousStart);
        previousStart = w.start;
        EXPECT_GT(w.end, w.start);
        EXPECT_LE(w.end, kHour);
        const Tick width = w.end - w.start;
        switch (w.cls) {
          case FaultClass::PowerDropout:
            EXPECT_LE(width, secondsToTicks(20.0));
            break;
          case FaultClass::PowerSpike:
            EXPECT_LE(width, secondsToTicks(10.0));
            EXPECT_DOUBLE_EQ(w.magnitude, 3.0);
            break;
          case FaultClass::ArrivalBurst:
            EXPECT_LE(width, secondsToTicks(15.0));
            break;
          default:
            ADD_FAILURE() << "unexpected windowed class";
        }
    }
}

TEST(FaultInjectorWindows, PowerWindowsNeverOverlap)
{
    // Dropouts and spikes splice the same trace; overlaps between
    // them must have been discarded at prepare() time.
    FaultInjector injector(windowedSpec(), 99);
    injector.prepare(10 * kHour);
    Tick covered = -1;
    for (const FaultInjector::Window &w : injector.windows()) {
        if (w.cls != FaultClass::PowerDropout &&
            w.cls != FaultClass::PowerSpike)
            continue;
        EXPECT_GE(w.start, covered);
        covered = w.end;
    }
}

TEST(FaultInjectorWindows, PrepareTwicePanics)
{
    FaultInjector injector(windowedSpec(), 1);
    injector.prepare(kHour);
    EXPECT_DEATH(injector.prepare(kHour), "twice");
}

TEST(FaultInjectorPower, TracePerturbationMatchesWindows)
{
    FaultSpec spec;
    spec.powerTrace.dropoutsPerHour = 10.0;
    spec.powerTrace.dropoutSeconds = 30.0;
    spec.powerTrace.spikesPerHour = 10.0;
    spec.powerTrace.spikeSeconds = 10.0;
    spec.powerTrace.spikeFactor = 2.0;
    FaultInjector injector(spec, 5);
    injector.prepare(kHour);

    const energy::PowerTrace clean = energy::PowerTrace::constant(0.04);
    const energy::PowerTrace faulted = injector.perturbPowerTrace(clean);

    for (const FaultInjector::Window &w : injector.windows()) {
        const double inside = faulted.valueAt((w.start + w.end) / 2);
        if (w.cls == FaultClass::PowerDropout) {
            EXPECT_DOUBLE_EQ(inside, 0.0);
        } else if (w.cls == FaultClass::PowerSpike) {
            EXPECT_DOUBLE_EQ(inside, 0.08);
        }
        EXPECT_DOUBLE_EQ(faulted.valueAt(w.end), 0.04);
    }
    ASSERT_FALSE(injector.windows().empty());
}

TEST(FaultInjectorPower, PerturbBeforePreparePanics)
{
    FaultInjector injector(windowedSpec(), 1);
    EXPECT_DEATH(
        injector.perturbPowerTrace(energy::PowerTrace::constant(1.0)),
        "prepare");
}

TEST(FaultInjectorMeasurement, BiasIsAdditiveAndClampedAtZero)
{
    FaultSpec spec;
    spec.measurement.biasWatts = -0.03;
    FaultInjector injector(spec, 1);
    injector.prepare(kHour);
    EXPECT_DOUBLE_EQ(injector.perturbMeasuredPower(0.05), 0.02);
    EXPECT_DOUBLE_EQ(injector.perturbMeasuredPower(0.01), 0.0);
}

TEST(FaultInjectorMeasurement, NoiseIsMultiplicativeAndSeeded)
{
    FaultSpec spec;
    spec.measurement.noiseSigma = 0.2;
    FaultInjector a(spec, 3);
    FaultInjector b(spec, 3);
    a.prepare(kHour);
    b.prepare(kHour);
    for (int k = 0; k < 100; ++k) {
        const Watts ma = a.perturbMeasuredPower(0.05);
        ASSERT_DOUBLE_EQ(ma, b.perturbMeasuredPower(0.05)) << k;
        ASSERT_GT(ma, 0.0) << k; // lognormal never crosses zero
    }
}

TEST(FaultInjectorMeasurement, InertMeasurementPassesThrough)
{
    FaultSpec spec = windowedSpec(); // power faults only
    FaultInjector injector(spec, 1);
    injector.prepare(kHour);
    EXPECT_DOUBLE_EQ(injector.perturbMeasuredPower(0.123), 0.123);
}

TEST(FaultInjectorArrivals, BurstQueriesMatchWindows)
{
    FaultSpec spec;
    spec.arrivals.burstsPerHour = 8.0;
    spec.arrivals.burstSeconds = 12.0;
    FaultInjector injector(spec, 17);
    injector.prepare(kHour);
    ASSERT_FALSE(injector.windows().empty());

    // Monotone sweep (the capture loop's access pattern): inside a
    // burst window the query is true, outside false.
    std::vector<FaultInjector::Window> bursts;
    for (const FaultInjector::Window &w : injector.windows())
        if (w.cls == FaultClass::ArrivalBurst)
            bursts.push_back(w);
    std::size_t cursor = 0;
    for (Tick t = 0; t < kHour; t += 500) {
        while (cursor < bursts.size() && bursts[cursor].end <= t)
            ++cursor;
        const bool expected = cursor < bursts.size() &&
            t >= bursts[cursor].start && t < bursts[cursor].end;
        ASSERT_EQ(injector.forceCaptureDifferent(t), expected)
            << "tick " << t;
    }
}

TEST(FaultInjectorArrivals, JitterBoundedAndZeroWhenOff)
{
    FaultSpec spec;
    spec.arrivals.captureJitterMs = 40;
    FaultInjector injector(spec, 1);
    injector.prepare(kHour);
    bool sawNonZero = false;
    for (int k = 0; k < 500; ++k) {
        const Tick j = injector.captureJitter();
        ASSERT_GE(j, -40);
        ASSERT_LE(j, 40);
        sawNonZero = sawNonZero || j != 0;
    }
    EXPECT_TRUE(sawNonZero);

    FaultInjector off(windowedSpec(), 1);
    off.prepare(kHour);
    for (int k = 0; k < 10; ++k)
        EXPECT_EQ(off.captureJitter(), 0);
}

TEST(FaultInjectorExecution, CertainOverrunStretchesEveryTask)
{
    FaultSpec spec;
    spec.execution.overrunProbability = 1.0;
    spec.execution.overrunFactor = 2.5;
    FaultInjector injector(spec, 1);
    injector.prepare(kHour);
    EXPECT_EQ(injector.perturbExecutionTicks(1000), 2500);
    // Even a factor that rounds to no change must cost >= 1 tick.
    spec.execution.overrunFactor = 1.0001;
    FaultInjector tiny(spec, 1);
    tiny.prepare(kHour);
    EXPECT_EQ(tiny.perturbExecutionTicks(10), 11);
}

TEST(FaultInjectorExecution, ImpossibleOverrunNeverFires)
{
    FaultSpec spec;
    spec.execution.overrunProbability = 0.0;
    spec.execution.overrunFactor = 5.0;
    FaultInjector injector(spec, 1);
    injector.prepare(kHour);
    for (int k = 0; k < 100; ++k)
        ASSERT_EQ(injector.perturbExecutionTicks(777), 777);
    EXPECT_EQ(injector.injectedCount(), 0u);
}

TEST(FaultInjectorEpisodes, DetectThenMitigateFollowsThresholds)
{
    FaultSpec spec;
    spec.measurement.biasWatts = 0.01; // non-inert so episodes matter
    spec.detectErrorSeconds = 1.0;
    spec.mitigateStreak = 3;
    FaultInjector injector(spec, 1);
    injector.prepare(kHour);

    // Calm jobs: no episode.
    injector.observePrediction(5.0, 5.5, 0.0);
    EXPECT_EQ(injector.detectedCount(), 0u);

    // Error above threshold opens one episode (not one per job).
    injector.observePrediction(5.0, 7.0, 0.0);
    injector.observePrediction(5.0, 8.0, 0.0);
    EXPECT_EQ(injector.detectedCount(), 1u);
    EXPECT_EQ(injector.mitigatedCount(), 0u);

    // Two calm jobs are not enough at streak 3...
    injector.observePrediction(5.0, 5.2, 0.1);
    injector.observePrediction(5.0, 5.1, 0.1);
    EXPECT_EQ(injector.mitigatedCount(), 0u);
    // ...a relapse resets the streak...
    injector.observePrediction(5.0, 9.0, 0.1);
    injector.observePrediction(5.0, 5.2, 0.1);
    injector.observePrediction(5.0, 5.1, 0.1);
    EXPECT_EQ(injector.mitigatedCount(), 0u);
    // ...and three consecutive calm jobs close it.
    injector.observePrediction(5.0, 5.0, 0.1);
    EXPECT_EQ(injector.mitigatedCount(), 1u);
    EXPECT_EQ(injector.detectedCount(), 1u);

    // A fresh excursion opens a second episode.
    injector.observePrediction(5.0, 7.5, 0.1);
    EXPECT_EQ(injector.detectedCount(), 2u);
}

TEST(FaultInjectorEpisodes, NegativeErrorsAlsoDetect)
{
    FaultSpec spec;
    spec.measurement.biasWatts = 0.01;
    spec.detectErrorSeconds = 0.5;
    FaultInjector injector(spec, 1);
    injector.prepare(kHour);
    injector.observePrediction(5.0, 3.0, 0.0); // over-prediction
    EXPECT_EQ(injector.detectedCount(), 1u);
}

TEST(FaultInjectorTelemetry, InjectedEventsMatchCounts)
{
    FaultSpec spec = windowedSpec();
    spec.measurement.biasWatts = 0.005;
    spec.adc.flipMask = 0x01;
    spec.arrivals.captureJitterMs = 10;

    obs::VectorSink sink;
    obs::Recorder recorder(obs::ObsLevel::Counters, &sink);
    FaultInjector injector(spec, 11);
    injector.prepare(kHour);
    injector.setObserver(&recorder);
    injector.onRunStart();
    for (Tick t = 0; t < kHour; t += 1000) {
        recorder.setTime(t);
        injector.onTick(t);
    }

    std::size_t injectedEvents = 0;
    for (const obs::Event &event : sink.events()) {
        if (event.kind == obs::EventKind::FaultInjected)
            ++injectedEvents;
    }
    // Persistent faults (bias, adc, jitter) + every window.
    EXPECT_EQ(injectedEvents, injector.injectedCount());
    EXPECT_EQ(injector.injectedCount(),
              3 + injector.windows().size());
}

TEST(FaultInjectorTelemetry, ObserverPresenceNeverChangesDraws)
{
    // The determinism keystone: running with a recorder attached must
    // yield the same windows, measurements and counts as without.
    FaultSpec spec = windowedSpec();
    spec.measurement.noiseSigma = 0.1;
    spec.execution.overrunProbability = 0.5;
    spec.execution.overrunFactor = 2.0;

    obs::VectorSink sink;
    obs::Recorder recorder(obs::ObsLevel::Full, &sink);
    FaultInjector observed(spec, 23);
    observed.prepare(kHour);
    observed.setObserver(&recorder);
    observed.onRunStart();

    FaultInjector blind(spec, 23);
    blind.prepare(kHour);
    blind.onRunStart();

    ASSERT_EQ(observed.windows().size(), blind.windows().size());
    for (std::size_t i = 0; i < observed.windows().size(); ++i)
        ASSERT_EQ(observed.windows()[i].start, blind.windows()[i].start);
    for (int k = 0; k < 200; ++k) {
        recorder.setTime(k);
        ASSERT_DOUBLE_EQ(observed.perturbMeasuredPower(0.05),
                         blind.perturbMeasuredPower(0.05));
        ASSERT_EQ(observed.perturbExecutionTicks(1000),
                  blind.perturbExecutionTicks(1000));
        ASSERT_EQ(observed.captureJitter(), blind.captureJitter());
    }
    EXPECT_EQ(observed.injectedCount(), blind.injectedCount());
}

TEST(FaultInjectorTelemetry, NoObserverStillCounts)
{
    FaultSpec spec;
    spec.measurement.biasWatts = 0.001;
    spec.arrivals.captureJitterMs = 5;
    FaultInjector injector(spec, 1);
    injector.prepare(kHour);
    injector.onRunStart(); // no observer attached
    EXPECT_EQ(injector.injectedCount(), 2u);
}

} // namespace
} // namespace fault
} // namespace quetzal
